"""Discrete-event simulation kernel.

A small, deterministic, generator-based discrete-event engine in the
style of SimPy.  Platform components in the data plane are written as
*processes* (Python generators) that ``yield`` events — timeouts,
resource acquisitions, other processes — and are resumed by the kernel
when those events fire.

The kernel is deliberately minimal:

* :class:`Environment` owns the clock and the event queue.
* :class:`Event` is a one-shot occurrence carrying a value or an error.
* :class:`Timeout` fires after a fixed simulated delay.
* :class:`Process` wraps a generator; it is itself an event that fires
  when the generator returns, so processes can wait on each other.
* :func:`all_of` / :func:`any_of` compose events.

Determinism: events scheduled at the same timestamp fire in FIFO order
of scheduling (stable sequence numbers), so a seeded simulation always
replays identically.
"""

from __future__ import annotations

import heapq
from collections.abc import Generator, Iterable
from time import perf_counter
from typing import Any, Callable

from repro.errors import SimulationError

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "KernelProfile",
    "all_of",
    "any_of",
]

#: Scheduling priority for ordinary events.
NORMAL = 1
#: Scheduling priority that beats NORMAL at the same timestamp (used for
#: resource handoffs so releases are observed before new arrivals).
URGENT = 0

_PENDING = object()


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*; it is *triggered* by :meth:`succeed` or
    :meth:`fail` (which schedules it), and *processed* once the kernel
    has run its callbacks.  Processes wait on events by yielding them.
    """

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: list[Callable[["Event"], None]] | None = []
        self._value: Any = _PENDING
        self._ok: bool | None = None

    @property
    def triggered(self) -> bool:
        """True once the event has a value (it may not have fired yet)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or the exception it failed with)."""
        if self._value is _PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        A waiting process sees the exception thrown into it at the yield
        point; an un-waited failure is surfaced by :meth:`Environment.run`.
        """
        if not isinstance(exception, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exception!r}")
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        self.env._schedule(self)
        return self

    def _add_callback(self, callback: Callable[["Event"], None]) -> None:
        if self.callbacks is None:
            # Already processed: run immediately in a fresh scheduling slot
            # so late listeners still hear about it.
            proxy = Event(self.env)
            proxy.callbacks.append(callback)
            if self._ok:
                proxy.succeed(self._value)
            else:
                proxy._ok = False
                proxy._value = self._value
                self.env._schedule(proxy)
        else:
            self.callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "pending"
        if self.triggered:
            state = "ok" if self._ok else "failed"
        return f"<{type(self).__name__} {state} at {hex(id(self))}>"


class Timeout(Event):
    """An event that fires ``delay`` simulated time units in the future."""

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env._schedule(self, delay=delay)


class Process(Event):
    """A running generator, resumable by the kernel.

    The process yields events; when an awaited event fires, the kernel
    resumes the generator with the event's value (or throws the event's
    exception into it).  The process itself is an event that fires with
    the generator's return value.
    """

    def __init__(self, env: "Environment", generator: Generator[Any, Any, Any]) -> None:
        if not isinstance(generator, Generator):
            raise SimulationError(
                f"Process requires a generator, got {type(generator).__name__}; "
                "did you forget a 'yield' in the process function?"
            )
        super().__init__(env)
        self._generator = generator
        self._target: Event | None = None
        # Kick off the generator at the current time.
        starter = Event(env)
        starter._ok = True
        starter._value = None
        starter.callbacks.append(self._resume)
        env._schedule(starter, priority=URGENT)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._value is _PENDING

    def _resume(self, event: Event) -> None:
        self.env._active_process = self
        while True:
            try:
                if event._ok:
                    target = self._generator.send(event._value)
                else:
                    target = self._generator.throw(event._value)
            except StopIteration as stop:
                self.env._active_process = None
                self.succeed(stop.value)
                return
            except BaseException as exc:  # noqa: BLE001 - propagate via event
                self.env._active_process = None
                self.fail(exc)
                if not self.callbacks:
                    # Nobody is waiting: surface the crash to run().
                    self.env._crashed.append((self, exc))
                return
            if not isinstance(target, Event):
                self.env._active_process = None
                exc2 = SimulationError(
                    f"process yielded {target!r}; processes may only yield events"
                )
                self.fail(exc2)
                self.env._crashed.append((self, exc2))
                return
            if target.processed:
                # Already fired; loop and feed its value straight back in.
                event = target
                continue
            self._target = target
            target._add_callback(self._resume)
            self.env._active_process = None
            return


class _Condition(Event):
    """Base for all_of / any_of composition."""

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self._events = list(events)
        self._pending = 0
        for ev in self._events:
            if ev.triggered and not ev.ok:
                self._on_child(ev)
                return
        for ev in self._events:
            if ev.processed:
                self._on_processed(ev)
            else:
                self._pending += 1
                ev._add_callback(self._on_child)
        self._check_start()

    def _check_start(self) -> None:
        raise NotImplementedError

    def _on_processed(self, ev: Event) -> None:
        raise NotImplementedError

    def _on_child(self, ev: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Fires when every child event has fired; value is a list of values."""

    def _check_start(self) -> None:
        if self._pending == 0 and not self.triggered:
            self.succeed([ev.value for ev in self._events])

    def _on_processed(self, ev: Event) -> None:
        pass

    def _on_child(self, ev: Event) -> None:
        if self.triggered:
            return
        if not ev._ok:
            self.fail(ev._value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed([child.value for child in self._events])


class AnyOf(_Condition):
    """Fires when the first child fires; value is (index, value)."""

    def _check_start(self) -> None:
        if not self._events:
            raise SimulationError("any_of() requires at least one event")
        for index, ev in enumerate(self._events):
            if ev.processed and not self.triggered:
                self.succeed((index, ev.value))

    def _on_processed(self, ev: Event) -> None:
        pass

    def _on_child(self, ev: Event) -> None:
        if self.triggered:
            return
        if not ev._ok:
            self.fail(ev._value)
            return
        index = self._events.index(ev)
        self.succeed((index, ev.value))


def all_of(env: "Environment", events: Iterable[Event]) -> AllOf:
    """Return an event that fires once all ``events`` have fired."""
    return AllOf(env, events)


def any_of(env: "Environment", events: Iterable[Event]) -> AnyOf:
    """Return an event that fires when the first of ``events`` fires."""
    return AnyOf(env, events)


class KernelProfile:
    """Per-event-type dispatch statistics of one environment.

    Enabled via :meth:`Environment.enable_profiling`; off by default so
    the dispatch loop pays a single ``is None`` branch.  Counts and
    cumulative *wall-clock* callback time are keyed by the event's
    class name — simulated time is never touched, so enabling the
    profiler cannot perturb a seeded run's behaviour.
    """

    __slots__ = ("dispatch_count", "dispatch_seconds", "started_at")

    def __init__(self) -> None:
        self.dispatch_count: dict[str, int] = {}
        self.dispatch_seconds: dict[str, float] = {}
        self.started_at = perf_counter()

    def record(self, event_type: str, elapsed_s: float) -> None:
        self.dispatch_count[event_type] = self.dispatch_count.get(event_type, 0) + 1
        self.dispatch_seconds[event_type] = (
            self.dispatch_seconds.get(event_type, 0.0) + elapsed_s
        )

    @property
    def total_dispatches(self) -> int:
        return sum(self.dispatch_count.values())

    @property
    def total_seconds(self) -> float:
        return sum(self.dispatch_seconds.values())

    def stats(self) -> dict[str, dict[str, float]]:
        """Per-event-type ``{count, seconds}`` rows, sorted by name."""
        return {
            name: {
                "count": float(self.dispatch_count[name]),
                "seconds": self.dispatch_seconds.get(name, 0.0),
            }
            for name in sorted(self.dispatch_count)
        }

    def collect_metrics(self, registry) -> None:
        """Mirror dispatch statistics into labeled registry instruments."""
        from repro.monitoring.plane import set_counter

        for name, count in self.dispatch_count.items():
            labels = {"event": name, "plane": "kernel"}
            set_counter(registry, "sim.dispatch_total", float(count), labels)
            set_counter(
                registry,
                "sim.dispatch_seconds_total",
                self.dispatch_seconds.get(name, 0.0),
                labels,
            )


class Environment:
    """The simulation clock and event queue.

    Usage::

        env = Environment()

        def worker(env):
            yield env.timeout(1.5)
            return "done"

        proc = env.process(worker(env))
        env.run()
        assert proc.value == "done"
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self.now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._active_process: Process | None = None
        self._crashed: list[tuple[Process, BaseException]] = []
        #: Dispatch profiler; ``None`` (the default) keeps :meth:`step`
        #: on its original fast path.
        self.profile: KernelProfile | None = None

    def enable_profiling(self) -> KernelProfile:
        """Start (or return the existing) per-event-type dispatch profile."""
        if self.profile is None:
            self.profile = KernelProfile()
        return self.profile

    # -- scheduling ------------------------------------------------------

    def _schedule(self, event: Event, delay: float = 0.0, priority: int = NORMAL) -> None:
        self._seq += 1
        heapq.heappush(self._queue, (self.now + delay, priority, self._seq, event))

    def schedule(self, event: Event, delay: float = 0.0) -> None:
        """Public hook used by resources to schedule pre-valued events."""
        self._schedule(event, delay=delay)

    # -- factories -------------------------------------------------------

    def event(self) -> Event:
        """Create a pending event to be triggered manually."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator[Any, Any, Any]) -> Process:
        """Start a new process running ``generator``."""
        return Process(self, generator)

    def sleep(self, delay: float) -> Timeout:
        """Alias of :meth:`timeout`, reads better in process code."""
        return self.timeout(delay)

    # -- execution -------------------------------------------------------

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one scheduled event."""
        if not self._queue:
            raise SimulationError("step() on an empty schedule")
        when, _prio, _seq, event = heapq.heappop(self._queue)
        self.now = when
        callbacks, event.callbacks = event.callbacks, None
        profile = self.profile
        if profile is None:
            for callback in callbacks or ():
                callback(event)
        else:
            started = perf_counter()
            for callback in callbacks or ():
                callback(event)
            profile.record(type(event).__name__, perf_counter() - started)
        if self._crashed:
            process, exc = self._crashed.pop(0)
            self._crashed.clear()
            raise SimulationError(
                f"unhandled failure in {process!r}: {exc!r}"
            ) from exc

    def run(self, until: float | Event | None = None) -> Any:
        """Run until the horizon, an event fires, or the queue drains.

        * ``until=None`` — run until no events remain.
        * ``until=<float>`` — run until simulated time reaches the value.
        * ``until=<Event>`` — run until that event fires and return its
          value (raising its exception if it failed).
        """
        if isinstance(until, Event):
            stop = until
            if stop.callbacks is not None:
                # Mark the event as watched: a failure of the awaited
                # process is delivered via `raise` below, not treated as
                # an unhandled crash.
                stop.callbacks.append(lambda _ev: None)
            while not stop.processed:
                if not self._queue:
                    raise SimulationError(
                        "run(until=event) exhausted the schedule before the "
                        "event fired — deadlock?"
                    )
                self.step()
            if stop.ok:
                return stop.value
            raise stop.value
        horizon = float("inf") if until is None else float(until)
        if horizon < self.now:
            raise SimulationError(f"run(until={horizon}) is in the past (now={self.now})")
        while self._queue and self._queue[0][0] <= horizon:
            self.step()
        if horizon != float("inf"):
            self.now = horizon
        return None

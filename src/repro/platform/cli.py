"""``ocli`` — the Oparaca command-line interface (tutorial step 2).

Commands:

* ``ocli validate <package>``  — parse and resolve a package file.
* ``ocli show <package> [--cls NAME]`` — print resolved class details.
* ``ocli templates`` — list the provider's class-runtime templates.
* ``ocli run <package> --new CLS [...]`` — deploy the package on an
  ephemeral in-process platform, create an object, and invoke functions
  on it.  Handlers come from ``--handlers module:callable`` (a callable
  receiving the platform to register images) or ``--auto-handlers``,
  which registers echoing stub handlers for every image in the package.
"""

from __future__ import annotations

import argparse
import importlib
import json
import sys

from repro.crm.template import default_catalog
from repro.errors import OaasError
from repro.model.pkg import Package, load_package

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ocli", description="Oparaca platform CLI (OaaS reproduction)"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    validate = sub.add_parser("validate", help="parse and resolve a package file")
    validate.add_argument("package", help="path to a YAML/JSON package file")

    show = sub.add_parser("show", help="print resolved class details")
    show.add_argument("package")
    show.add_argument("--cls", help="show only this class")

    sub.add_parser("templates", help="list class-runtime templates")

    run = sub.add_parser("run", help="deploy a package and invoke functions")
    run.add_argument("package")
    run.add_argument("--handlers", help="module:callable registering images")
    run.add_argument(
        "--auto-handlers",
        action="store_true",
        help="register stub handlers for every image in the package",
    )
    run.add_argument("--new", dest="new_cls", required=True, help="class to instantiate")
    run.add_argument("--state", default="{}", help="initial state JSON")
    run.add_argument(
        "--invoke",
        action="append",
        default=[],
        metavar="FN[:PAYLOAD_JSON]",
        help="function to invoke on the new object (repeatable)",
    )
    run.add_argument("--nodes", type=int, default=3, help="worker VM count")
    return parser


def _load_pkg(path: str) -> Package:
    return load_package(path)


def _cmd_validate(args: argparse.Namespace) -> int:
    package = _load_pkg(args.package)
    resolved = package.resolved_classes()
    print(f"package {package.name!r}: OK")
    print(f"  classes:   {len(package.classes)}")
    print(f"  functions: {len(package.functions)}")
    for name in sorted(resolved):
        cls = resolved[name]
        parent = cls.definition.parent or "-"
        print(
            f"    {name} (parent={parent}, state keys={len(cls.state)}, "
            f"methods={len(cls.methods)})"
        )
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    package = _load_pkg(args.package)
    resolved = package.resolved_classes()
    names = [args.cls] if args.cls else sorted(resolved)
    for name in names:
        if name not in resolved:
            print(f"error: no class {name!r} in package", file=sys.stderr)
            return 1
        cls = resolved[name]
        print(f"class {cls.name}")
        print(f"  ancestry: {' -> '.join(cls.ancestry)}")
        print(f"  nfr: qos={cls.nfr.qos} constraint={cls.nfr.constraint}")
        print("  state:")
        for spec in cls.state:
            print(f"    {spec.name}: {spec.dtype.value}")
        print("  methods:")
        for method in cls.method_names:
            binding = cls.methods[method]
            kind = binding.function.ftype.value
            impl = binding.function.image or "(dataflow)"
            print(f"    {method} [{kind}] {impl} access={binding.access.value}")
    return 0


def _cmd_templates(_args: argparse.Namespace) -> int:
    catalog = default_catalog()
    for template in sorted(catalog.templates, key=lambda t: -t.priority):
        print(f"{template.name} (priority {template.priority})")
        print(f"  engine={template.config.engine} "
              f"placement={template.config.placement.value} "
              f"replication={template.config.replication} "
              f"persistent={template.config.persistent}")
        if template.description:
            print(f"  {template.description}")
    return 0


def _register_stub_handlers(platform, package: Package) -> None:
    images = set()
    for fn in package.functions:
        if fn.image:
            images.add(fn.image)
    for cls in package.classes:
        for binding in cls.bindings:
            if binding.function.image:
                images.add(binding.function.image)

    def make_stub(image: str):
        # Stubs must not touch state: the class schema is arbitrary and
        # commit-time validation would reject unknown keys.
        def stub(ctx):
            return {"image": image, "payload": dict(ctx.payload)}

        return stub

    for image in sorted(images):
        platform.register_image(image, make_stub(image), service_time_s=0.001)


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.platform.oparaca import Oparaca, PlatformConfig

    package = _load_pkg(args.package)
    platform = Oparaca(PlatformConfig(nodes=args.nodes))
    if args.handlers:
        module_name, _, attr = args.handlers.partition(":")
        if not attr:
            print("error: --handlers must be module:callable", file=sys.stderr)
            return 2
        register = getattr(importlib.import_module(module_name), attr)
        register(platform)
    elif args.auto_handlers:
        _register_stub_handlers(platform, package)
    else:
        print(
            "error: provide --handlers module:callable or --auto-handlers",
            file=sys.stderr,
        )
        return 2
    platform.deploy(package)
    for runtime in platform.describe():
        print(
            f"deployed {runtime['class']} via template {runtime['template']!r} "
            f"on {runtime['engine']}"
        )
    object_id = platform.new_object(args.new_cls, state=json.loads(args.state))
    print(f"created {object_id}")
    for spec in args.invoke:
        fn, _, payload_text = spec.partition(":")
        payload = json.loads(payload_text) if payload_text else {}
        result = platform.invoke(object_id, fn, payload, raise_on_error=False)
        status = "ok" if result.ok else f"FAILED: {result.error}"
        print(f"invoke {fn}: {status}")
        if result.ok and result.output:
            print(f"  output: {json.dumps(result.output, default=str)}")
    record = platform.get_object(object_id)
    print(f"final state: {json.dumps(record['state'], default=str)}")
    platform.shutdown()
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "validate": _cmd_validate,
        "show": _cmd_show,
        "templates": _cmd_templates,
        "run": _cmd_run,
    }
    try:
        return handlers[args.command](args)
    except OaasError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

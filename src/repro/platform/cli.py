"""``ocli`` — the Oparaca command-line interface (tutorial step 2).

Commands:

* ``ocli validate <package>``  — parse and resolve a package file.
* ``ocli show <package> [--cls NAME]`` — print resolved class details.
* ``ocli templates`` — list the provider's class-runtime templates.
* ``ocli run <package> --new CLS [...]`` — deploy the package on an
  ephemeral in-process platform, create an object, and invoke functions
  on it.  Handlers come from ``--handlers module:callable`` (a callable
  receiving the platform to register images) or ``--auto-handlers``,
  which registers echoing stub handlers for every image in the package.
* ``ocli trace <package> --new CLS [...]`` — run the same workload with
  tracing enabled and print each request's span tree (or export Chrome
  ``trace_event`` JSON with ``--chrome FILE``).
* ``ocli events <package> --new CLS [...]`` — run with the control-plane
  event log enabled and print what the platform did (placements, scale
  decisions, cold starts, ...).
* ``ocli report <package> --new CLS [...]`` — run with full
  observability on and print the summary report plus per-class NFR
  compliance verdicts.
* ``ocli chaos <package> --new CLS --plan NAME [...]`` — run a steady
  workload while a named fault plan (node crash, partition, slow pods,
  storage errors, cold-start storm, overload, mixed) plays out, then
  print the chaos summary and the NFR report with
  availability-under-fault rows.
* ``ocli qos <package> --new CLS [...]`` — run the workload with the
  QoS enforcement plane on (admission control, weighted-fair async
  scheduling, load shedding) and print the resolved policies plus
  admission / fair-queue / shedding statistics.
* ``ocli metrics <package> --new CLS [...]`` — run the workload with
  the metrics plane on (labeled instruments, deterministic sim-time
  scraping) and print the registry as OpenMetrics/Prometheus text (or
  the JSON snapshot with sampled series via ``--json``).
* ``ocli slo <package> --new CLS [...]`` — run the workload with the
  metrics plane and SLO evaluator on (optionally under a fault plan via
  ``--chaos``) and print each declared objective's budget consumption
  plus the burn-rate alert history.
* ``ocli workers <package> --new CLS [...]`` — run the workload with
  the scheduler plane on (explicit worker pool: registration,
  heartbeats, per-worker dispatch queues, drain/rebind) and print the
  worker table, the dispatch ledger audit, and the lifecycle events;
  ``--drain``/``--crash`` retire a worker mid-run to show handoff.
* ``ocli snapshot <package> --new CLS [...]`` — run the workload with
  the durability plane on, take a consistent snapshot cut through the
  gateway, and print the retained generations.
* ``ocli restore <package> --new CLS [...]`` — run the workload, cut a
  snapshot, mutate further, then point-in-time restore the class back
  to the cut and print the restore summary plus the rewound state.
* ``ocli query <package> --new CLS [--create STATE ...] --where ...`` —
  deploy a package, create objects, and run a typed query over the
  class's declared keySpecs (equality/range/prefix predicates, ordering,
  limit/cursor pagination); ``--backend sqlite`` answers it from
  secondary indexes, ``--explain`` prints the plan.

Workload commands accept ``--backend {dict,sqlite}`` and ``--db PATH``
to choose the store engine; with ``--backend sqlite --db FILE`` the
platform's objects survive process death (see ``serve --linger``).
"""

from __future__ import annotations

import argparse
import importlib
import json
import sys

from repro.crm.template import default_catalog
from repro.errors import OaasError
from repro.model.pkg import Package, load_package

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ocli", description="Oparaca platform CLI (OaaS reproduction)"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    validate = sub.add_parser("validate", help="parse and resolve a package file")
    validate.add_argument("package", help="path to a YAML/JSON package file")

    show = sub.add_parser("show", help="print resolved class details")
    show.add_argument("package")
    show.add_argument("--cls", help="show only this class")

    sub.add_parser("templates", help="list class-runtime templates")

    def add_workload_args(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument("package")
        cmd.add_argument("--handlers", help="module:callable registering images")
        cmd.add_argument(
            "--auto-handlers",
            action="store_true",
            help="register stub handlers for every image in the package",
        )
        cmd.add_argument(
            "--new", dest="new_cls", required=True, help="class to instantiate"
        )
        cmd.add_argument("--state", default="{}", help="initial state JSON")
        cmd.add_argument(
            "--invoke",
            action="append",
            default=[],
            metavar="FN[:PAYLOAD_JSON]",
            help="function to invoke on the new object (repeatable)",
        )
        cmd.add_argument("--nodes", type=int, default=3, help="worker VM count")
        cmd.add_argument(
            "--backend",
            choices=("dict", "sqlite"),
            default="dict",
            help="store engine behind the document store (sqlite survives "
            "process death and auto-enables the durability plane)",
        )
        cmd.add_argument(
            "--db",
            default=None,
            metavar="PATH",
            help="SQLite database file (default: in-memory); requires "
            "--backend sqlite",
        )

    run = sub.add_parser("run", help="deploy a package and invoke functions")
    add_workload_args(run)

    trace = sub.add_parser(
        "trace", help="run a workload with tracing on and print span trees"
    )
    add_workload_args(trace)
    trace.add_argument(
        "--chrome",
        metavar="FILE",
        help="also write Chrome trace_event JSON to FILE ('-' for stdout)",
    )

    events = sub.add_parser(
        "events", help="run a workload and print control-plane events"
    )
    add_workload_args(events)
    events.add_argument("--type", dest="event_type", help="only this event type")
    events.add_argument("--limit", type=int, help="only the newest N events")

    report = sub.add_parser(
        "report", help="run a workload and print the observability report"
    )
    add_workload_args(report)
    report.add_argument(
        "--json", dest="as_json", action="store_true", help="emit JSON instead of text"
    )

    from repro.chaos import PLAN_NAMES

    chaos = sub.add_parser(
        "chaos", help="run a workload under a named fault plan"
    )
    add_workload_args(chaos)
    chaos.add_argument(
        "--plan",
        default="node-crash",
        choices=PLAN_NAMES,
        help="builtin fault plan to inject",
    )
    chaos.add_argument(
        "--rounds", type=int, default=60, help="workload rounds to drive"
    )
    chaos.add_argument(
        "--interval",
        type=float,
        default=0.15,
        help="simulated seconds between rounds",
    )
    chaos.add_argument("--seed", type=int, default=0, help="platform RNG seed")

    qos = sub.add_parser(
        "qos",
        help="run a workload with the QoS enforcement plane on and print "
        "admission / fair-queue / shedding statistics",
    )
    add_workload_args(qos)
    qos.add_argument(
        "--rounds", type=int, default=60, help="workload rounds to drive"
    )
    qos.add_argument(
        "--interval",
        type=float,
        default=0.05,
        help="simulated seconds between rounds",
    )
    qos.add_argument(
        "--async-per-round",
        type=int,
        default=4,
        help="fire-and-forget invocations submitted per round "
        "(exercises the weighted-fair queue)",
    )
    qos.add_argument(
        "--concurrency-limit",
        type=int,
        default=None,
        help="platform-wide in-flight HTTP ceiling",
    )
    qos.add_argument("--seed", type=int, default=0, help="platform RNG seed")

    def add_steady_args(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument(
            "--rounds", type=int, default=60, help="workload rounds to drive"
        )
        cmd.add_argument(
            "--interval",
            type=float,
            default=0.1,
            help="simulated seconds between rounds",
        )
        cmd.add_argument(
            "--scrape-interval",
            type=float,
            default=0.5,
            help="metrics scrape interval (simulated seconds)",
        )
        cmd.add_argument("--seed", type=int, default=0, help="platform RNG seed")

    metrics = sub.add_parser(
        "metrics",
        help="run a workload with the metrics plane on and print the "
        "registry as OpenMetrics text",
    )
    add_workload_args(metrics)
    add_steady_args(metrics)
    metrics.add_argument(
        "--json",
        dest="as_json",
        action="store_true",
        help="emit the JSON snapshot (instruments + sampled series) instead",
    )

    slo = sub.add_parser(
        "slo",
        help="run a workload with the SLO evaluator on and print burn-rate "
        "alerts and budget consumption",
    )
    add_workload_args(slo)
    add_steady_args(slo)
    slo.add_argument(
        "--chaos",
        dest="chaos_plan",
        default=None,
        choices=PLAN_NAMES,
        help="also inject this fault plan (burns error budget)",
    )
    slo.add_argument(
        "--json", dest="as_json", action="store_true", help="emit JSON instead of text"
    )

    serve = sub.add_parser(
        "serve",
        help="serve the platform over the real asyncio HTTP front end "
        "(scheduler transport=asyncio) and drive concurrent requests at it",
    )
    add_workload_args(serve)
    serve.add_argument("--pool", type=int, default=4, help="worker pool size")
    serve.add_argument(
        "--port", type=int, default=0, help="HTTP port (0 picks an ephemeral one)"
    )
    serve.add_argument(
        "--requests", type=int, default=24, help="invocations to drive over HTTP"
    )
    serve.add_argument(
        "--concurrency", type=int, default=8, help="concurrent HTTP connections"
    )
    serve.add_argument("--seed", type=int, default=0, help="platform RNG seed")
    serve.add_argument(
        "--crash-worker",
        dest="crash_worker",
        default=None,
        metavar="WORKER",
        help="abort this worker's connection mid-run (epoch fence + requeue)",
    )
    serve.add_argument(
        "--linger",
        action="store_true",
        help="serve until killed instead of driving a benchmark workload "
        "(no object is created; pair with --backend sqlite --db FILE for "
        "a store that survives the kill)",
    )

    query = sub.add_parser(
        "query",
        help="deploy a package, create objects, and run a typed query "
        "(where/order/limit) over a class's declared keySpecs",
    )
    add_workload_args(query)
    query.add_argument(
        "--create",
        action="append",
        default=[],
        metavar="STATE_JSON",
        help="additional object to create with this initial state "
        "(repeatable)",
    )
    query.add_argument(
        "--where",
        default=None,
        help="predicate conjunction, e.g. 'total>=10,region^=eu'",
    )
    query.add_argument("--order", default=None, help="order key, e.g. 'total:desc'")
    query.add_argument("--limit", type=int, default=None, help="page size")
    query.add_argument("--cursor", default=None, help="resume token from a previous page")
    query.add_argument(
        "--explain",
        action="store_true",
        help="print the engine's query plan and whether an index was used",
    )

    workers = sub.add_parser(
        "workers",
        help="run a workload with the scheduler plane on and print the "
        "worker table, ledger audit, and lifecycle events",
    )
    add_workload_args(workers)
    workers.add_argument("--pool", type=int, default=4, help="worker pool size")
    workers.add_argument(
        "--rounds", type=int, default=40, help="workload rounds to drive"
    )
    workers.add_argument(
        "--interval",
        type=float,
        default=0.05,
        help="simulated seconds between rounds",
    )
    workers.add_argument(
        "--async-per-round",
        type=int,
        default=4,
        help="fire-and-forget invocations submitted per round "
        "(dispatched through the worker queues)",
    )
    workers.add_argument(
        "--drain",
        dest="drain_worker",
        default=None,
        metavar="WORKER",
        help="drain this worker halfway through (graceful handoff)",
    )
    workers.add_argument(
        "--crash",
        dest="crash_worker",
        default=None,
        metavar="WORKER",
        help="crash this worker halfway through (epoch fence + requeue)",
    )
    workers.add_argument("--seed", type=int, default=0, help="platform RNG seed")

    snapshot = sub.add_parser(
        "snapshot",
        help="run a workload with the durability plane on and take a "
        "consistent snapshot cut",
    )
    add_workload_args(snapshot)
    snapshot.add_argument(
        "--snapshot-interval",
        type=float,
        default=1.0,
        help="periodic cut interval (simulated seconds)",
    )

    restore = sub.add_parser(
        "restore",
        help="run a workload, snapshot, mutate further, then restore the "
        "class to the snapshot point",
    )
    add_workload_args(restore)
    restore.add_argument(
        "--snapshot-interval",
        type=float,
        default=1.0,
        help="periodic cut interval (simulated seconds)",
    )
    restore.add_argument(
        "--at",
        type=float,
        default=None,
        help="restore point in simulated seconds (default: latest cut)",
    )

    migrate = sub.add_parser(
        "migrate",
        help="run a workload with the federation plane on and live-migrate "
        "the object into another zone",
    )
    add_workload_args(migrate)
    migrate.add_argument(
        "--zones",
        default="edge-a:edge,region-a:regional,core:core",
        metavar="NAME:TIER[,NAME:TIER...]",
        help="zone topology; cluster nodes are labelled round-robin "
        "across the zones (tiers: edge, regional, core)",
    )
    migrate.add_argument(
        "--to",
        dest="target_zone",
        required=True,
        metavar="ZONE",
        help="target zone for the live migration",
    )
    migrate.add_argument(
        "--origin",
        default=None,
        metavar="ZONE",
        help="origin zone stamped on workload requests (geo-routing)",
    )
    migrate.add_argument("--seed", type=int, default=0, help="platform RNG seed")
    return parser


def _load_pkg(path: str) -> Package:
    return load_package(path)


def _cmd_validate(args: argparse.Namespace) -> int:
    package = _load_pkg(args.package)
    resolved = package.resolved_classes()
    print(f"package {package.name!r}: OK")
    print(f"  classes:   {len(package.classes)}")
    print(f"  functions: {len(package.functions)}")
    for name in sorted(resolved):
        cls = resolved[name]
        parent = cls.definition.parent or "-"
        print(
            f"    {name} (parent={parent}, state keys={len(cls.state)}, "
            f"methods={len(cls.methods)})"
        )
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    package = _load_pkg(args.package)
    resolved = package.resolved_classes()
    names = [args.cls] if args.cls else sorted(resolved)
    for name in names:
        if name not in resolved:
            print(f"error: no class {name!r} in package", file=sys.stderr)
            return 1
        cls = resolved[name]
        print(f"class {cls.name}")
        print(f"  ancestry: {' -> '.join(cls.ancestry)}")
        print(f"  nfr: qos={cls.nfr.qos} constraint={cls.nfr.constraint}")
        print("  state:")
        for spec in cls.state:
            print(f"    {spec.name}: {spec.dtype.value}")
        print("  methods:")
        for method in cls.method_names:
            binding = cls.methods[method]
            kind = binding.function.ftype.value
            impl = binding.function.image or "(dataflow)"
            print(f"    {method} [{kind}] {impl} access={binding.access.value}")
    return 0


def _cmd_templates(_args: argparse.Namespace) -> int:
    catalog = default_catalog()
    for template in sorted(catalog.templates, key=lambda t: -t.priority):
        print(f"{template.name} (priority {template.priority})")
        print(f"  engine={template.config.engine} "
              f"placement={template.config.placement.value} "
              f"replication={template.config.replication} "
              f"persistent={template.config.persistent}")
        if template.description:
            print(f"  {template.description}")
    return 0


def _register_stub_handlers(platform, package: Package) -> None:
    images = set()
    for fn in package.functions:
        if fn.image:
            images.add(fn.image)
    for cls in package.classes:
        for binding in cls.bindings:
            if binding.function.image:
                images.add(binding.function.image)

    def make_stub(image: str):
        # Stubs must not touch state: the class schema is arbitrary and
        # commit-time validation would reject unknown keys.
        def stub(ctx):
            return {"image": image, "payload": dict(ctx.payload)}

        return stub

    for image in sorted(images):
        platform.register_image(image, make_stub(image), service_time_s=0.001)


def _build_platform(
    args: argparse.Namespace,
    package: Package,
    tracing: bool = False,
    events: bool = False,
    qos_config=None,
    durability_config=None,
    metrics_config=None,
    scheduler_config=None,
    federation_config=None,
    regions=(),
):
    """An ephemeral platform with the workload's handlers registered, or
    ``None`` (after printing the error) when handler wiring is invalid."""
    from repro.durability.plane import DurabilityConfig
    from repro.federation.plane import FederationConfig
    from repro.monitoring.plane import MetricsConfig
    from repro.platform.oparaca import Oparaca, PlatformConfig
    from repro.qos.plane import QosConfig
    from repro.scheduler.plane import SchedulerConfig
    from repro.storage.backends import StorageConfig

    storage_config = StorageConfig(
        backend=getattr(args, "backend", "dict"), path=getattr(args, "db", None)
    )
    if storage_config.backend == "sqlite" and durability_config is None:
        # A durable engine without the durability plane would still lose
        # queued write-behind commits on a kill; enabling the plane makes
        # strong-persistence classes write through synchronously.
        durability_config = DurabilityConfig(enabled=True)
    platform = Oparaca(
        PlatformConfig(
            nodes=args.nodes,
            regions=tuple(regions),
            seed=getattr(args, "seed", 0),
            tracing_enabled=tracing,
            events_enabled=events,
            storage=storage_config,
            qos=qos_config if qos_config is not None else QosConfig(),
            durability=(
                durability_config
                if durability_config is not None
                else DurabilityConfig()
            ),
            metrics=(
                metrics_config if metrics_config is not None else MetricsConfig()
            ),
            scheduler=(
                scheduler_config
                if scheduler_config is not None
                else SchedulerConfig()
            ),
            federation=(
                federation_config
                if federation_config is not None
                else FederationConfig()
            ),
        )
    )
    if args.handlers:
        module_name, _, attr = args.handlers.partition(":")
        if not attr:
            print("error: --handlers must be module:callable", file=sys.stderr)
            return None
        register = getattr(importlib.import_module(module_name), attr)
        register(platform)
    elif args.auto_handlers:
        _register_stub_handlers(platform, package)
    else:
        print(
            "error: provide --handlers module:callable or --auto-handlers",
            file=sys.stderr,
        )
        return None
    return platform


def _run_workload(platform, args: argparse.Namespace, quiet: bool = False) -> str:
    """Create the object and run each ``--invoke``; returns the object id.

    Goes through the gateway's REST surface (not the engine directly) so
    traces start at the ``gateway`` span, like a real client's would.
    """
    body = {"state": json.loads(args.state)} if args.state != "{}" else {}
    created = platform.http("POST", f"/api/classes/{args.new_cls}", body)
    if not created.ok:
        raise OaasError(f"object creation failed: {created.body.get('error')}")
    object_id = created.body["id"]
    if not quiet:
        print(f"created {object_id}")
    for spec in args.invoke:
        fn, _, payload_text = spec.partition(":")
        payload = json.loads(payload_text) if payload_text else {}
        response = platform.http("POST", f"/api/objects/{object_id}/invokes/{fn}", payload)
        if not quiet:
            status = "ok" if response.ok else f"FAILED: {response.body.get('error')}"
            print(f"invoke {fn}: {status}")
            if response.ok and response.body:
                print(f"  output: {json.dumps(response.body, default=str)}")
    return object_id


def _cmd_run(args: argparse.Namespace) -> int:
    package = _load_pkg(args.package)
    platform = _build_platform(args, package)
    if platform is None:
        return 2
    platform.deploy(package)
    for runtime in platform.describe():
        print(
            f"deployed {runtime['class']} via template {runtime['template']!r} "
            f"on {runtime['engine']}"
        )
    object_id = _run_workload(platform, args)
    record = platform.get_object(object_id)
    print(f"final state: {json.dumps(record['state'], default=str)}")
    platform.shutdown()
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    package = _load_pkg(args.package)
    platform = _build_platform(args, package, tracing=True)
    if platform is None:
        return 2
    platform.deploy(package)
    _run_workload(platform, args, quiet=True)
    platform.shutdown()
    if args.chrome:
        if args.chrome == "-":
            print(platform.export_chrome_trace())
        else:
            platform.export_chrome_trace(path=args.chrome)
            print(f"wrote Chrome trace ({len(platform.tracer)} spans) to {args.chrome}")
            print("open chrome://tracing or https://ui.perfetto.dev to view")
    else:
        print(platform.render_trace())
    return 0


def _cmd_events(args: argparse.Namespace) -> int:
    package = _load_pkg(args.package)
    platform = _build_platform(args, package, events=True)
    if platform is None:
        return 2
    platform.deploy(package)
    _run_workload(platform, args, quiet=True)
    platform.shutdown()
    print(platform.events.render(type=args.event_type, limit=args.limit))
    counts = platform.events.type_counts()
    if counts and not args.event_type:
        summary = " ".join(f"{k}={v}" for k, v in sorted(counts.items()))
        print(f"\n{len(platform.events)} event(s): {summary}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.monitoring.export import format_summary
    from repro.monitoring.nfr_report import format_nfr_report

    package = _load_pkg(args.package)
    platform = _build_platform(args, package, tracing=True, events=True)
    if platform is None:
        return 2
    platform.deploy(package)
    _run_workload(platform, args, quiet=True)
    platform.shutdown()
    if args.as_json:
        print(json.dumps(platform.observability_report(), indent=2, default=str))
        return 0
    report = platform.observability_report()
    print(format_summary(report))
    print("\nNFR compliance (declared QoS vs observed):")
    print(format_nfr_report(platform.nfr_report()))
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.chaos import named_plan
    from repro.monitoring.nfr_report import format_nfr_report

    package = _load_pkg(args.package)
    platform = _build_platform(args, package, tracing=True, events=True)
    if platform is None:
        return 2
    platform.deploy(package)
    plan = named_plan(args.plan, list(platform.cluster.node_names))
    print(f"injecting plan {plan.name!r}:")
    for fault in plan.describe()["faults"]:
        print(f"  {json.dumps(fault, default=str)}")
    injector = platform.inject_chaos(plan)

    body = {"state": json.loads(args.state)} if args.state != "{}" else {}
    created = platform.http("POST", f"/api/classes/{args.new_cls}", body)
    if not created.ok:
        raise OaasError(f"object creation failed: {created.body.get('error')}")
    object_id = created.body["id"]
    invokes = args.invoke or ["get"]
    ok = failed = 0
    for _round in range(args.rounds):
        for spec in invokes:
            fn, _, payload_text = spec.partition(":")
            payload = json.loads(payload_text) if payload_text else {}
            response = platform.http(
                "POST", f"/api/objects/{object_id}/invokes/{fn}", payload
            )
            if response.ok:
                ok += 1
            else:
                failed += 1
        platform.advance(args.interval)
    # Let the plan finish (and breakers settle) before judging.
    platform.advance(max(0.0, plan.end_s - platform.now) + 1.0)
    platform.shutdown()

    print(f"\nworkload: {ok} ok / {failed} failed over {args.rounds} rounds")
    summary = injector.summary()
    print(
        f"chaos: injected={summary['injected']} recovered={summary['recovered']} "
        f"fault_time_s={summary['fault_time_s']:.2f}"
    )
    snap = platform.snapshot()
    print(
        f"resilience: retries={snap['engine.fault_retries']:.0f} "
        f"timeouts={snap['engine.timeouts']:.0f} "
        f"stale_reads={snap['engine.stale_reads']:.0f} "
        f"open_breakers={snap['engine.open_breakers']:.0f}"
    )
    print("\nNFR compliance:")
    print(format_nfr_report(platform.nfr_report()))
    return 0


def _cmd_qos(args: argparse.Namespace) -> int:
    from repro.monitoring.nfr_report import format_nfr_report
    from repro.qos.plane import QosConfig

    package = _load_pkg(args.package)
    platform = _build_platform(
        args,
        package,
        events=True,
        qos_config=QosConfig(enabled=True, concurrency_limit=args.concurrency_limit),
    )
    if platform is None:
        return 2
    platform.deploy(package)

    body = {"state": json.loads(args.state)} if args.state != "{}" else {}
    created = platform.http("POST", f"/api/classes/{args.new_cls}", body)
    if not created.ok:
        raise OaasError(f"object creation failed: {created.body.get('error')}")
    object_id = created.body["id"]
    invokes = args.invoke or ["get"]
    ok = failed = rejected = 0
    completions = []
    for _round in range(args.rounds):
        for spec in invokes:
            fn, _, payload_text = spec.partition(":")
            payload = json.loads(payload_text) if payload_text else {}
            response = platform.http(
                "POST", f"/api/objects/{object_id}/invokes/{fn}", payload
            )
            if response.ok:
                ok += 1
            elif response.status in (429, 503):
                rejected += 1
            else:
                failed += 1
        fn0, _, payload_text0 = invokes[0].partition(":")
        for _ in range(args.async_per_round):
            completions.append(
                platform.invoke_async(
                    object_id,
                    fn0,
                    json.loads(payload_text0) if payload_text0 else {},
                )
            )
        platform.advance(args.interval)
    platform.advance(2.0)  # drain the async backlog
    platform.shutdown()

    print(
        f"workload: {ok} ok / {rejected} rejected / {failed} failed "
        f"over {args.rounds} rounds "
        f"(+{len(completions)} async submissions)"
    )
    stats = platform.qos_report()
    print("\nresolved policies:")
    print(
        f"  {'class':<16} {'rate_rps':>9} {'burst':>7} {'weight':>7} "
        f"{'tier':>5} {'deadline_ms':>12}"
    )
    for row in stats["policies"]:
        rate = "-" if row["rate_rps"] is None else f"{row['rate_rps']:.0f}"
        deadline = "-" if row["deadline_ms"] is None else f"{row['deadline_ms']:.0f}"
        print(
            f"  {row['class']:<16} {rate:>9} {row['burst']:>7.1f} "
            f"{row['weight']:>7} {row['tier']:>5} {deadline:>12}"
        )
    print("\nadmission:")
    for cls, row in stats["admission"].items():
        print(
            f"  {cls:<16} admitted={row['admitted']} "
            f"rejected_rate={row['rejected_rate']} "
            f"rejected_concurrency={row['rejected_concurrency']}"
        )
    fq = stats["fair_queue"]
    print(
        f"\nfair queue: pushed={fq['pushed']} served={fq['served']} "
        f"depth={fq['depth']}"
    )
    if "shedder" in stats:
        shed = stats["shedder"]
        print(
            f"shedder: passes={shed['passes']} shed={shed['shed_total']} "
            f"by_class={shed['shed_by_class']}"
        )
    delay = platform.monitoring.registry.histogram("qos.queue_delay_s")
    if delay.count:
        print(
            f"queue delay: n={delay.count} mean={delay.mean * 1000:.2f}ms "
            f"p95={delay.percentile(95) * 1000:.2f}ms"
        )
    print("\nNFR compliance:")
    print(format_nfr_report(platform.nfr_report()))
    return 0


def _drive_steady(platform, args: argparse.Namespace) -> tuple[str, int, int]:
    """Create the object, then drive ``--invoke`` rounds on a fixed
    cadence (the shape the scraper and SLO evaluator are built for).
    Returns ``(object_id, ok, failed)``."""
    body = {"state": json.loads(args.state)} if args.state != "{}" else {}
    created = platform.http("POST", f"/api/classes/{args.new_cls}", body)
    if not created.ok:
        raise OaasError(f"object creation failed: {created.body.get('error')}")
    object_id = created.body["id"]
    invokes = args.invoke or ["get"]
    ok = failed = 0
    for _round in range(args.rounds):
        for spec in invokes:
            fn, _, payload_text = spec.partition(":")
            payload = json.loads(payload_text) if payload_text else {}
            response = platform.http(
                "POST", f"/api/objects/{object_id}/invokes/{fn}", payload
            )
            if response.ok:
                ok += 1
            else:
                failed += 1
        platform.advance(args.interval)
    return object_id, ok, failed


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro.monitoring.plane import MetricsConfig

    package = _load_pkg(args.package)
    platform = _build_platform(
        args,
        package,
        events=True,
        metrics_config=MetricsConfig(
            enabled=True, scrape_interval_s=args.scrape_interval
        ),
    )
    if platform is None:
        return 2
    platform.deploy(package)
    _, ok, failed = _drive_steady(platform, args)
    platform.shutdown()
    # One final scrape after the flush so the exported counters include
    # everything the shutdown drained.
    platform.metrics.scraper.scrape_once()
    if args.as_json:
        print(platform.metrics_report(indent=2))
    else:
        print(platform.metrics_exposition(), end="")
    stats = platform.metrics.stats()
    print(
        f"workload: {ok} ok / {failed} failed; "
        f"scrapes={stats['scrapes']} series={stats['series']} "
        f"instruments={stats['instruments']}",
        file=sys.stderr,
    )
    return 0


def _cmd_slo(args: argparse.Namespace) -> int:
    from repro.monitoring.plane import MetricsConfig

    package = _load_pkg(args.package)
    platform = _build_platform(
        args,
        package,
        events=True,
        metrics_config=MetricsConfig(
            enabled=True, scrape_interval_s=args.scrape_interval
        ),
    )
    if platform is None:
        return 2
    platform.deploy(package)
    if args.chaos_plan:
        from repro.chaos import named_plan

        plan = named_plan(args.chaos_plan, list(platform.cluster.node_names))
        platform.inject_chaos(plan)
        print(f"injecting plan {plan.name!r}", file=sys.stderr)
    _, ok, failed = _drive_steady(platform, args)
    platform.shutdown()
    platform.metrics.scraper.scrape_once()
    report = platform.slo_report()
    if args.as_json:
        print(json.dumps(report, indent=2, default=str))
        return 0
    print(f"workload: {ok} ok / {failed} failed over {args.rounds} rounds")
    print(f"\nobjectives ({report['evaluations']} evaluations):")
    for row in report["objectives"]:
        if row["slo"] == "throughput":
            print(
                f"  {row['cls']:<16} {row['slo']:<13} target={row['target']:g}rps "
                f"observed={row['observed_rps']:.1f}rps"
            )
            continue
        print(
            f"  {row['cls']:<16} {row['slo']:<13} target={row['target']:g} "
            f"bad={row['bad']}/{row['total']} "
            f"budget_consumed={row['budget_consumed']:.2f}"
        )
    alerts = report["alerts"]
    if not alerts:
        print("\nno SLO alerts fired")
    else:
        print(f"\nalerts ({len(alerts)}):")
        for alert in alerts:
            resolved = (
                "firing"
                if alert["resolved_at"] is None
                else f"resolved at t={alert['resolved_at']:.2f}s"
            )
            print(
                f"  [{alert['severity']}] {alert['cls']}/{alert['slo']} "
                f"fired at t={alert['fired_at']:.2f}s ({resolved}) "
                f"burn={alert['burn_long']:.1f}x/{alert['burn_short']:.1f}x"
            )
            if alert["detail"]:
                print(f"      {alert['detail']}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.scheduler.plane import SchedulerConfig

    package = _load_pkg(args.package)
    platform = _build_platform(
        args,
        package,
        scheduler_config=SchedulerConfig(
            enabled=True,
            transport="asyncio",
            pool_size=args.pool,
            # Wall-clock heartbeats: keep the silence budget generous so
            # a busy event loop doesn't read as worker death.
            heartbeat_interval_s=0.25,
            degraded_after_misses=2,
            dead_after_misses=4,
        ),
    )
    if platform is None:
        return 2
    platform.deploy(package)

    async def request(host, port, method, path, body=None):
        reader, writer = await asyncio.open_connection(host, port)
        payload = json.dumps(body or {}).encode("utf-8")
        writer.write(
            (
                f"{method} {path} HTTP/1.1\r\nHost: {host}\r\n"
                f"Content-Length: {len(payload)}\r\n\r\n"
            ).encode("latin-1")
            + payload
        )
        head = await reader.readuntil(b"\r\n\r\n")
        status = int(head.split(b" ", 2)[1])
        length = 0
        for line in head.split(b"\r\n"):
            if line.lower().startswith(b"content-length:"):
                length = int(line.partition(b":")[2])
        data = await reader.readexactly(length)
        writer.close()
        return status, json.loads(data)

    async def drive() -> dict:
        front = await platform.serve_http(port=args.port)
        host, port = front.host, front.port
        print(f"serving on http://{host}:{port} with {args.pool} workers", flush=True)
        if args.linger:
            # Serve real clients until the process is killed.  This is
            # the mode the sqlite durability drill runs: kill -9 this
            # process, restart it on the same --db file, and the objects
            # are still there.
            await asyncio.Event().wait()
        body = {"state": json.loads(args.state)} if args.state != "{}" else {}
        status, created = await request(
            host, port, "POST", f"/api/classes/{args.new_cls}", body
        )
        if status != 201:
            raise OaasError(f"object creation failed: {created.get('error')}")
        object_id = created["id"]
        invokes = args.invoke or ["get"]
        statuses: list[int] = []
        semaphore = asyncio.Semaphore(max(1, args.concurrency))
        crash_at = args.requests // 2

        async def one(index: int) -> None:
            fn, _, payload_text = invokes[index % len(invokes)].partition(":")
            payload = json.loads(payload_text) if payload_text else {}
            async with semaphore:
                if args.crash_worker and index == crash_at:
                    for worker in front.workers:
                        if worker.name == args.crash_worker:
                            worker.kill()
                            print(f"killed {worker.name}'s connection mid-run")
                status, _ = await request(
                    host,
                    port,
                    "POST",
                    f"/api/objects/{object_id}/invokes/{fn}",
                    payload,
                )
                statuses.append(status)

        await asyncio.gather(*[one(i) for i in range(args.requests)])
        _, workers_body = await request(host, port, "GET", "/api/workers")
        report = await front.stop()
        return {
            "statuses": statuses,
            "workers": workers_body,
            "report": report,
            "fenced": front.scheduler.fenced,
        }

    try:
        outcome = asyncio.run(drive())
    except KeyboardInterrupt:
        return 0
    counts: dict[int, int] = {}
    for status in outcome["statuses"]:
        counts[status] = counts.get(status, 0) + 1
    print("HTTP statuses:", " ".join(f"{k}x{v}" for k, v in sorted(counts.items())))
    print(f"{'WORKER':<12} {'STATE':<10} {'EPOCH':>5} {'DONE':>5}")
    for row in outcome["workers"]["workers"]:
        print(
            f"{row['worker']:<12} {row['state']:<10} "
            f"{row['epoch']:>5} {row['completed']:>5}"
        )
    audit = outcome["workers"]["ledger"]
    print(
        f"ledger: accepted={audit['accepted']} completed={audit['completed']} "
        f"requeues={audit['requeues']} suppressed={audit['suppressed']} "
        f"outstanding={audit['outstanding']} fenced={outcome['fenced']}"
    )
    print(f"stop report: {outcome['report']}")
    return 0


def _cmd_workers(args: argparse.Namespace) -> int:
    from repro.scheduler.plane import SchedulerConfig

    package = _load_pkg(args.package)
    platform = _build_platform(
        args,
        package,
        events=True,
        scheduler_config=SchedulerConfig(enabled=True, pool_size=args.pool),
    )
    if platform is None:
        return 2
    platform.deploy(package)

    body = {"state": json.loads(args.state)} if args.state != "{}" else {}
    created = platform.http("POST", f"/api/classes/{args.new_cls}", body)
    if not created.ok:
        raise OaasError(f"object creation failed: {created.body.get('error')}")
    object_id = created.body["id"]
    invokes = args.invoke or ["get"]
    ok = failed = 0
    completions = []
    halfway = max(1, args.rounds // 2)
    for round_index in range(args.rounds):
        if round_index == halfway:
            if args.drain_worker:
                response = platform.http(
                    "POST", f"/api/workers/{args.drain_worker}/drain"
                )
                verb = "draining" if response.ok else "drain FAILED:"
                print(f"{verb} {args.drain_worker} at t={platform.now:.3f}s")
            if args.crash_worker:
                crashed = platform.scheduler_plane.crash_worker(
                    args.crash_worker, reason="cli"
                )
                verb = "crashed" if crashed else "crash no-op (unknown/dead):"
                print(f"{verb} {args.crash_worker} at t={platform.now:.3f}s")
        for spec in invokes:
            fn, _, payload_text = spec.partition(":")
            payload = json.loads(payload_text) if payload_text else {}
            response = platform.http(
                "POST", f"/api/objects/{object_id}/invokes/{fn}", payload
            )
            if response.ok:
                ok += 1
            else:
                failed += 1
        fn0, _, payload_text0 = invokes[0].partition(":")
        for _ in range(args.async_per_round):
            completions.append(
                platform.invoke_async(
                    object_id,
                    fn0,
                    json.loads(payload_text0) if payload_text0 else {},
                )
            )
        platform.advance(args.interval)
    platform.advance(2.0)  # settle the worker queues
    platform.shutdown()

    print(
        f"workload: {ok} ok / {failed} failed over {args.rounds} rounds "
        f"(+{len(completions)} async submissions through worker queues)"
    )
    stats = platform.scheduler_report()
    print("\nworkers:")
    print(
        f"  {'worker':<12} {'state':<10} {'node':<8} {'epoch':>5} "
        f"{'dispatched':>11} {'completed':>10} {'beats':>6}"
    )
    for row in stats["workers"]:
        print(
            f"  {row['worker']:<12} {row['state']:<10} {row['node'] or '-':<8} "
            f"{row['epoch']:>5} {row['dispatched']:>11} {row['completed']:>10} "
            f"{row['heartbeats']:>6}"
        )
    audit = stats["ledger"]
    print(
        f"\nledger: accepted={audit['accepted']} completed={audit['completed']} "
        f"outstanding={audit['outstanding']} requeues={audit['requeues']} "
        f"suppressed={audit['suppressed']}"
    )
    print(
        f"pool: registrations={stats['registrations']} "
        f"live={stats['live_workers']} parked_total={stats['parked_total']}"
    )
    lifecycle = [
        event
        for event in platform.events.events()
        if event.type.startswith("scheduler.")
        and event.type not in ("scheduler.dispatch", "scheduler.complete", "scheduler.place")
    ]
    print(f"\nlifecycle events ({len(lifecycle)}):")
    for event in lifecycle:
        fields = " ".join(f"{k}={v}" for k, v in event.fields.items())
        print(f"  [{event.at:9.4f}s] {event.type:<22} {fields}")
    return 0


def _durability_platform(args: argparse.Namespace, package: Package):
    from repro.durability.plane import DurabilityConfig

    return _build_platform(
        args,
        package,
        events=True,
        durability_config=DurabilityConfig(
            enabled=True, default_interval_s=args.snapshot_interval
        ),
    )


def _cmd_snapshot(args: argparse.Namespace) -> int:
    package = _load_pkg(args.package)
    platform = _durability_platform(args, package)
    if platform is None:
        return 2
    platform.deploy(package)
    _run_workload(platform, args, quiet=True)
    cut = platform.http("POST", f"/api/classes/{args.new_cls}/snapshots")
    if cut.status not in (200, 201):
        print(f"error: snapshot failed: {cut.body.get('error')}", file=sys.stderr)
        return 1
    if cut.body.get("generation") is None:
        print(f"nothing to capture for {args.new_cls} (no changes since last cut)")
    else:
        print(
            f"cut generation {cut.body['generation']} at "
            f"t={cut.body['cut_time']:.4f}s: {cut.body['captured']} object(s)"
        )
    listing = platform.http("GET", f"/api/classes/{args.new_cls}/snapshots")
    print(f"\nretained generations ({listing.body.get('count', 0)}):")
    for entry in listing.body.get("generations", []):
        print(
            f"  gen {entry['generation']:>4} cut_time={entry['cut_time']:.4f}s "
            f"captured={entry['captured']} tombstones={entry['tombstones']}"
        )
    stats = platform.durability_report()
    row = stats["classes"].get(args.new_cls, {})
    print(
        f"\ndurability: cuts={row.get('cuts_taken', 0)} "
        f"skipped={row.get('cuts_skipped', 0)} "
        f"bytes={row.get('snapshot_bytes', 0)} "
        f"epoch_writes={row.get('epoch_writes', 0)}"
    )
    platform.shutdown()
    return 0


def _cmd_restore(args: argparse.Namespace) -> int:
    package = _load_pkg(args.package)
    platform = _durability_platform(args, package)
    if platform is None:
        return 2
    platform.deploy(package)
    object_id = _run_workload(platform, args, quiet=True)
    cut = platform.http("POST", f"/api/classes/{args.new_cls}/snapshots")
    if cut.status not in (200, 201):
        print(f"error: snapshot failed: {cut.body.get('error')}", file=sys.stderr)
        return 1
    if cut.body.get("generation") is None:
        # The periodic loop already covered the workload; restore from
        # the latest retained generation instead.
        listing = platform.http("GET", f"/api/classes/{args.new_cls}/snapshots")
        generations = listing.body.get("generations", [])
        if not generations:
            print(f"error: no snapshot generation of {args.new_cls}", file=sys.stderr)
            return 1
        latest = generations[-1]
        print(
            f"periodic cut already current: generation {latest['generation']} "
            f"at t={latest['cut_time']:.4f}s"
        )
    else:
        print(
            f"cut generation {cut.body['generation']} at t={cut.body['cut_time']:.4f}s"
        )
    # Mutate past the cut so the rewind is visible.
    for spec in args.invoke:
        fn, _, payload_text = spec.partition(":")
        payload = json.loads(payload_text) if payload_text else {}
        platform.http("POST", f"/api/objects/{object_id}/invokes/{fn}", payload)
    before = platform.get_object(object_id)
    body = {} if args.at is None else {"at": args.at}
    restored = platform.http("POST", f"/api/classes/{args.new_cls}/restore", body)
    if not restored.ok:
        print(f"error: restore failed: {restored.body.get('error')}", file=sys.stderr)
        return 1
    print(
        f"restored {restored.body.get('restored', 0)} object(s) from generation "
        f"{restored.body.get('generation')} "
        f"(purged {restored.body.get('purged', 0)} newer)"
    )
    after = platform.get_object(object_id)
    print(f"state before restore: {json.dumps(before['state'], default=str)}")
    print(f"state after restore:  {json.dumps(after['state'], default=str)}")
    platform.shutdown()
    return 0


def _parse_zones(text: str):
    from repro.federation.topology import Zone

    zones = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        name, _, tier = part.partition(":")
        zones.append(Zone(name=name.strip(), tier=tier.strip() or "regional"))
    return tuple(zones)


def _cmd_migrate(args: argparse.Namespace) -> int:
    from repro.federation.plane import FederationConfig

    package = _load_pkg(args.package)
    zones = _parse_zones(args.zones)
    platform = _build_platform(
        args,
        package,
        events=True,
        federation_config=FederationConfig(
            enabled=True, zones=zones, default_origin_zone=args.origin
        ),
        regions=tuple(zone.name for zone in zones),
    )
    if platform is None:
        return 2
    platform.deploy(package)
    object_id = _run_workload(platform, args, quiet=True)
    plane = platform.federation
    runtime = platform.crm.runtime(args.new_cls)
    source = runtime.dht.owner(object_id)
    source_zone = plane.planner.zone_of_node(source)
    print(
        f"object {object_id} lives on {source} "
        f"(zone {source_zone.name if source_zone else '?'})"
    )
    response = platform.http(
        "POST",
        f"/api/classes/{args.new_cls}/objects/{object_id}/migrate",
        {"zone": args.target_zone},
    )
    if not response.ok:
        print(f"error: migration failed: {response.body.get('error')}", file=sys.stderr)
        return 1
    body = response.body
    print(
        f"migrated to {body['target']} (zone {body['target_zone']}) in "
        f"{body['duration_s']:.4f}s at version {body['version']} "
        f"(epoch {body['epoch']})"
    )
    owner = runtime.dht.owner(object_id)
    record = platform.get_object(object_id)
    print(f"post-migration owner: {owner}, version {record['version']}")
    stats = platform.federation_report()
    print(
        f"federation: migrations={stats['migrations_total']} "
        f"failed={stats['migrations_failed']} "
        f"cross_zone={stats['cross_zone_total']} "
        f"rejections={stats['rejections_total']}"
    )
    platform.shutdown()
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    import urllib.parse

    package = _load_pkg(args.package)
    platform = _build_platform(args, package)
    if platform is None:
        return 2
    platform.deploy(package)
    _run_workload(platform, args, quiet=True)
    for state_text in args.create:
        body = {"state": json.loads(state_text)}
        created = platform.http("POST", f"/api/classes/{args.new_cls}", body)
        if not created.ok:
            raise OaasError(f"object creation failed: {created.body.get('error')}")
    params = []
    if args.where:
        params.append(("where", args.where))
    if args.order:
        params.append(("order", args.order))
    if args.limit is not None:
        params.append(("limit", str(args.limit)))
    if args.cursor:
        params.append(("cursor", args.cursor))
    if args.explain:
        params.append(("explain", "1"))
    # A bare "?" still selects the query route (an unfiltered query),
    # which is the point: same surface, same accounting.
    query_string = urllib.parse.urlencode(params)
    response = platform.http(
        "GET", f"/api/classes/{args.new_cls}/objects?{query_string}"
    )
    if not response.ok:
        print(f"error: query failed: {response.body.get('error')}", file=sys.stderr)
        return 1
    body = response.body
    for doc in body["objects"]:
        print(f"{doc['id']}  {json.dumps(doc.get('state', {}), default=str)}")
    print(
        f"\n{body['count']} object(s), {body['scanned']} scanned "
        f"(backend={platform.store.backend.name})"
    )
    if body.get("cursor"):
        print(f"next page: --cursor {body['cursor']}")
    if args.explain:
        print(f"plan: {body.get('plan')}")
        print(f"index used: {body.get('index_used')}")
    platform.shutdown()
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "validate": _cmd_validate,
        "show": _cmd_show,
        "templates": _cmd_templates,
        "run": _cmd_run,
        "trace": _cmd_trace,
        "events": _cmd_events,
        "report": _cmd_report,
        "chaos": _cmd_chaos,
        "qos": _cmd_qos,
        "metrics": _cmd_metrics,
        "slo": _cmd_slo,
        "serve": _cmd_serve,
        "workers": _cmd_workers,
        "snapshot": _cmd_snapshot,
        "restore": _cmd_restore,
        "migrate": _cmd_migrate,
        "query": _cmd_query,
    }
    try:
        return handlers[args.command](args)
    except OaasError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except json.JSONDecodeError as exc:
        print(f"error: invalid JSON argument: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""The Oparaca platform facade — the library's main entry point.

Wires every substrate together (cluster, scheduler, function registry,
document store, object store, network, monitoring, class runtime
manager, invocation engine, async queue, gateway) and exposes a
synchronous developer API on top of the simulation kernel: each call
advances simulated time just far enough to complete.

Typical use::

    from repro import Oparaca

    oparaca = Oparaca()

    @oparaca.function("img/resize", service_time_s=0.004)
    def resize(ctx):
        ctx.state["width"] = ctx.payload["width"]
        return {"resized": True}

    oparaca.deploy(PACKAGE_YAML)
    obj = oparaca.new_object("Image")
    result = oparaca.invoke(obj, "resize", {"width": 640})
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Generator, Mapping

from repro.chaos.injector import ChaosInjector
from repro.chaos.plan import FaultPlan
from repro.crm.manager import ClassRuntimeManager
from repro.crm.optimizer import RequirementOptimizer
from repro.crm.runtime import ClassRuntime
from repro.crm.template import TemplateCatalog
from repro.durability.plane import DurabilityConfig, DurabilityPlane
from repro import errors
from repro.errors import FunctionExecutionError, OaasError
from repro.faas.deployment_engine import DeploymentModel
from repro.faas.knative import KnativeModel
from repro.faas.registry import FunctionRegistry, Handler, ServiceTime
from repro.federation.plane import FederationConfig, FederationPlane
from repro.invoker.engine import InvocationEngine, split_object_id
from repro.invoker.queue import AsyncInvoker
from repro.invoker.request import InvocationRequest, InvocationResult
from repro.model.pkg import Package, load_package, loads_package
from repro.monitoring.collector import MonitoringSystem
from repro.monitoring.events import EventLog, PlatformEvent
from repro.monitoring.export import chrome_trace_json, summary_report
from repro.monitoring.nfr_report import NfrVerdict, nfr_compliance_report
from repro.monitoring.plane import MetricsConfig, MetricsPlane
from repro.monitoring.tracing import Tracer
from repro.orchestrator.cluster import Cluster
from repro.orchestrator.resources import ResourceSpec
from repro.orchestrator.scheduler import Scheduler
from repro.platform.gateway import Gateway, HttpRequest, HttpResponse
from repro.qos.plane import QosConfig, QosPlane
from repro.scheduler.plane import SchedulerConfig, SchedulerPlane
from repro.sim.kernel import Environment, Event, Process, all_of
from repro.sim.network import Network, NetworkModel
from repro.sim.rng import RngStreams
from repro.storage.backends import StorageConfig, make_backend
from repro.storage.kv import DbModel, DocumentStore
from repro.storage.object_store import ObjectStore, ObjectStoreModel

__all__ = ["PlatformConfig", "Oparaca"]


@dataclass(frozen=True)
class PlatformConfig:
    """Construction-time configuration for an Oparaca platform."""

    nodes: int = 3
    node_cpu_millis: int = 4000
    node_memory_mb: int = 16384
    #: Optional datacenter regions (the paper's §VI multi-DC future
    #: work).  Nodes are distributed round-robin across the regions and
    #: labelled; inter-region traffic pays ``network.inter_region_rtt_s``
    #: and jurisdiction-constrained classes deploy only onto matching
    #: regions.
    regions: tuple[str, ...] = ()
    seed: int = 0
    db: DbModel = field(default_factory=DbModel)
    #: Store engine behind the shared :class:`DocumentStore`.  The
    #: default dict engine is byte-identical to the historical in-memory
    #: store; ``StorageConfig(backend="sqlite", path=...)`` swaps in a
    #: durable SQLite database with keySpec secondary indexes.
    storage: StorageConfig = field(default_factory=StorageConfig)
    network: NetworkModel = field(default_factory=NetworkModel)
    object_store: ObjectStoreModel = field(default_factory=ObjectStoreModel)
    knative: KnativeModel = field(default_factory=KnativeModel)
    deployment: DeploymentModel = field(default_factory=DeploymentModel)
    catalog: TemplateCatalog | None = None
    async_partitions: int = 8
    scheduler_policy: str = "least-allocated"
    optimizer_enabled: bool = False
    optimizer_interval_s: float = 5.0
    tracing_enabled: bool = False
    #: Structured control-plane event log (scheduler placements, scale
    #: decisions, pod lifecycle, ...).  Off by default: like tracing,
    #: recording costs nothing when disabled.
    events_enabled: bool = False
    dht_op_cost_s: float = 0.00002
    gateway_overhead_s: float = 0.0002
    #: QoS enforcement plane (admission control, weighted-fair async
    #: scheduling, load shedding).  Off by default: with
    #: ``qos.enabled == False`` no plane is constructed and the data
    #: paths run their original (baseline) code.
    qos: QosConfig = field(default_factory=QosConfig)
    #: Durability plane (snapshots, point-in-time restore, measured
    #: crash recovery).  Off by default: with
    #: ``durability.enabled == False`` no plane is constructed and the
    #: storage write path runs its original (baseline) code.
    durability: DurabilityConfig = field(default_factory=DurabilityConfig)
    #: Metrics plane (labeled time-series scraping, OpenMetrics
    #: exposition, NFR-derived SLO burn-rate alerts, kernel profiling).
    #: Off by default: with ``metrics.enabled == False`` no scraper or
    #: evaluator is constructed and no collector ever runs.
    metrics: MetricsConfig = field(default_factory=MetricsConfig)
    #: Scheduler plane (explicit worker-pool control plane: registration,
    #: heartbeats, class installs, drain/rebind, exactly-once dispatch
    #: ledger).  Off by default: with ``scheduler.enabled == False`` no
    #: plane is constructed and async dispatch runs the original
    #: partitioned-topic (or QoS fair-queue) code.
    scheduler: SchedulerConfig = field(default_factory=SchedulerConfig)
    #: Federation plane (hierarchical edge/regional/core zone topology,
    #: NFR-scored placement, live object migration, geo-routing).  Off
    #: by default: with ``federation.enabled == False`` no plane is
    #: constructed, the flat ``regions`` behavior is untouched, and
    #: every data path runs its original (baseline) code.
    federation: FederationConfig = field(default_factory=FederationConfig)


class Oparaca:
    """An in-process Oparaca platform instance."""

    def __init__(self, config: PlatformConfig | None = None) -> None:
        self.config = config or PlatformConfig()
        self.env = Environment()
        self.rng = RngStreams(self.config.seed)
        self.tracer = Tracer(self.env, enabled=self.config.tracing_enabled)
        self.events = EventLog(self.env, enabled=self.config.events_enabled)
        self.cluster = Cluster(self.env, events=self.events)
        for index in range(self.config.nodes):
            labels = {}
            if self.config.regions:
                labels["region"] = self.config.regions[index % len(self.config.regions)]
            self.cluster.add_node(
                f"vm-{index}",
                ResourceSpec(self.config.node_cpu_millis, self.config.node_memory_mb),
                labels=labels,
            )
        self.scheduler = Scheduler(
            self.cluster, policy=self.config.scheduler_policy, events=self.events
        )
        self.registry = FunctionRegistry()
        region_of = self.cluster.region_of if self.config.regions else None
        self.network = Network(self.env, self.config.network, region_of=region_of)
        self.store = DocumentStore(
            self.env, self.config.db, backend=make_backend(self.config.storage)
        )
        self.object_store = ObjectStore(self.env, self.config.object_store)
        self.monitoring = MonitoringSystem(self.env)
        self.crm = ClassRuntimeManager(
            self.env,
            self.cluster,
            self.scheduler,
            self.registry,
            self.store,
            self.object_store,
            self.network,
            self.monitoring,
            rng=self.rng,
            catalog=self.config.catalog,
            knative_model=self.config.knative,
            deployment_model=self.config.deployment,
            dht_op_cost_s=self.config.dht_op_cost_s,
            tracer=self.tracer,
            events=self.events,
        )
        self.engine = InvocationEngine(
            self.env,
            self.crm,
            self.object_store,
            self.monitoring,
            tracer=self.tracer,
            rng=self.rng,
            events=self.events,
        )
        self.durability: DurabilityPlane | None = None
        if self.config.durability.enabled:
            self.durability = DurabilityPlane(
                self.env,
                self.crm,
                self.object_store,
                monitoring=self.monitoring,
                events=self.events,
                tracer=self.tracer,
                config=self.config.durability,
            )
            self.crm.durability = self.durability
        self.qos: QosPlane | None = None
        if self.config.qos.enabled:
            self.qos = QosPlane(
                self.env,
                self.crm,
                monitoring=self.monitoring,
                events=self.events,
                tracer=self.tracer,
                config=self.config.qos,
            )
        self.scheduler_plane: SchedulerPlane | None = None
        # The sim plane only exists on the sim transport; with
        # transport="asyncio" the sim dispatch path stays at baseline and
        # the same protocol is served over real sockets by serve_http().
        if self.config.scheduler.enabled and self.config.scheduler.transport == "sim":
            self.scheduler_plane = SchedulerPlane(
                self.env,
                self.engine,
                self.cluster,
                self.scheduler,
                events=self.events,
                tracer=self.tracer,
                config=self.config.scheduler,
            )
            self.scheduler_plane.start()
        self.federation: FederationPlane | None = None
        if self.config.federation.enabled:
            self.federation = FederationPlane(
                self.env,
                self.cluster,
                self.network,
                self.crm,
                events=self.events,
                tracer=self.tracer,
                config=self.config.federation,
            )
            self.crm.federation = self.federation
            self.engine.federation = self.federation
        self.queue = AsyncInvoker(
            self.env,
            self.engine,
            partitions=self.config.async_partitions,
            qos=self.qos,
            scheduler=self.scheduler_plane,
        )
        self.gateway = Gateway(
            self.env,
            self.engine,
            overhead_s=self.config.gateway_overhead_s,
            tracer=self.tracer,
            qos=self.qos,
            durability=self.durability,
            scheduler=self.scheduler_plane,
            federation=self.federation,
        )
        self._http_fronts: list[Any] = []
        self.chaos: ChaosInjector | None = None
        self.optimizer: RequirementOptimizer | None = None
        if self.config.optimizer_enabled:
            self.optimizer = RequirementOptimizer(
                self.env,
                self.crm,
                self.monitoring,
                interval_s=self.config.optimizer_interval_s,
                events=self.events,
            )
        self.metrics: MetricsPlane | None = None
        if self.config.metrics.enabled:
            self.metrics = MetricsPlane(
                self.env,
                self.monitoring,
                events=self.events,
                config=self.config.metrics,
            )
            self.metrics.install(self)
            self.metrics.start()

    # -- function images ----------------------------------------------------------

    def register_image(
        self,
        image: str,
        handler: Handler,
        service_time_s: ServiceTime = 0.001,
        output_bytes: int = 256,
        description: str = "",
    ) -> None:
        """Register a Python handler as a container image."""
        self.registry.register(image, handler, service_time_s, output_bytes, description)

    def function(
        self,
        image: str,
        service_time_s: ServiceTime = 0.001,
        output_bytes: int = 256,
        description: str = "",
    ) -> Callable[[Handler], Handler]:
        """Decorator form of :meth:`register_image`."""
        return self.registry.function(image, service_time_s, output_bytes, description)

    # -- deployment ----------------------------------------------------------------

    def deploy(self, package: Package | str | Path) -> list[ClassRuntime]:
        """Deploy a package (object, YAML/JSON text, or file path)."""
        if isinstance(package, Path):
            package = load_package(package)
        elif isinstance(package, str):
            candidate = Path(package)
            if package.lstrip().startswith(("classes:", "name:", "{", "functions:")):
                package = loads_package(package)
            elif candidate.suffix.lower() in (".yml", ".yaml", ".json") and candidate.exists():
                package = load_package(candidate)
            else:
                package = loads_package(package)
        runtimes = self.crm.deploy_package(package)
        if self.scheduler_plane is not None:
            for runtime in runtimes:
                self.scheduler_plane.on_deploy(runtime.cls)
        for front in self._http_fronts:
            for runtime in runtimes:
                front.on_deploy(runtime.cls)
        return runtimes

    # -- execution helpers ------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self.env.now

    def run(self, awaitable: Process | Event | Generator) -> Any:
        """Advance simulated time until ``awaitable`` completes."""
        if inspect.isgenerator(awaitable):
            awaitable = self.env.process(awaitable)
        return self.env.run(until=awaitable)

    def advance(self, seconds: float) -> None:
        """Advance simulated time by ``seconds``."""
        self.env.run(until=self.env.now + seconds)

    def flush(self) -> None:
        """Drain every class runtime's write-behind queue to the DB."""
        drains = [
            runtime.dht.flush_all() for runtime in self.crm.runtimes.values()
        ]
        if drains:
            self.env.run(until=all_of(self.env, drains))

    # -- synchronous object API ----------------------------------------------------------

    def new_object(
        self,
        cls: str,
        state: Mapping[str, Any] | None = None,
        object_id: str | None = None,
    ) -> str:
        """Create an object; returns its platform id."""
        payload: dict[str, Any] = {}
        if state:
            payload["state"] = dict(state)
        if object_id:
            payload["id"] = object_id
        result = self.run(
            self.engine.invoke(InvocationRequest(object_id="", fn_name="new", cls=cls, payload=payload))
        )
        self._raise_if_failed(result)
        return result.object_id

    def invoke(
        self,
        object_id: str,
        fn_name: str,
        payload: Mapping[str, Any] | None = None,
        cls: str | None = None,
        raise_on_error: bool = True,
    ) -> InvocationResult:
        """Invoke a function on an object, synchronously."""
        result = self.run(
            self.engine.invoke(
                InvocationRequest(
                    object_id=object_id,
                    fn_name=fn_name,
                    cls=cls,
                    payload=dict(payload or {}),
                )
            )
        )
        if raise_on_error:
            self._raise_if_failed(result)
        return result

    def invoke_async(
        self,
        object_id: str,
        fn_name: str,
        payload: Mapping[str, Any] | None = None,
        cls: str | None = None,
    ) -> Event:
        """Fire-and-forget invocation; returns the completion event."""
        return self.queue.submit(
            InvocationRequest(
                object_id=object_id, fn_name=fn_name, cls=cls, payload=dict(payload or {})
            )
        )

    def list_objects(self, cls: str) -> list[str]:
        """Ids of every live object of ``cls``."""
        return self.engine.list_objects(cls)

    def get_object(self, object_id: str) -> dict[str, Any]:
        """Read an object's record (id, cls, version, state, files)."""
        result = self.invoke(object_id, "get")
        return dict(result.output)

    def update_object(self, object_id: str, state: Mapping[str, Any]) -> int:
        """Patch structured state; returns the new version."""
        result = self.invoke(object_id, "update", {"state": dict(state)})
        return int(result.output["version"])

    def delete_object(self, object_id: str) -> None:
        self.invoke(object_id, "delete")

    # -- OOP handles ------------------------------------------------------------------

    def create(self, cls: str, object_id: str | None = None, **state: Any):
        """Create an object and return an :class:`ObjectHandle` for it::

            image = platform.create("Image", width=640)
            image.resize(width=128)
        """
        from repro.platform.client import ObjectHandle

        return ObjectHandle(
            self, self.new_object(cls, state=state or None, object_id=object_id)
        )

    def object(self, object_id: str):
        """Wrap an existing object id in an :class:`ObjectHandle`."""
        from repro.platform.client import ObjectHandle

        return ObjectHandle(self, object_id)

    # -- unstructured data ------------------------------------------------------------------

    def upload_file(
        self,
        object_id: str,
        key: str,
        data: bytes,
        content_type: str = "application/octet-stream",
    ) -> str:
        """Upload unstructured data for a FILE state key.

        Follows the §III-D flow: obtain a presigned PUT URL, upload
        through it (never holding the store's secret), then commit the
        key mapping on the object record.  Returns the object-store key.
        """
        result = self.invoke(object_id, "file-url", {"key": key, "method": "PUT"})
        url = result.output["url"]
        object_key = result.output["object_key"]
        self.run(self.object_store.presigned_put_timed(url, data, content_type))
        self.run(self.engine.attach_file(object_id, key, object_key))
        return object_key

    def download_file(self, object_id: str, key: str) -> bytes:
        """Fetch unstructured data through a presigned GET URL."""
        result = self.invoke(object_id, "file-url", {"key": key, "method": "GET"})
        return self.run(self.object_store.presigned_get_timed(result.output["url"])).data

    # -- HTTP front door -----------------------------------------------------------------------

    def http(
        self,
        method: str,
        path: str,
        body: Mapping[str, Any] | None = None,
        headers: Mapping[str, str] | None = None,
    ) -> HttpResponse:
        """Issue a REST request against the gateway, synchronously."""
        return self.run(
            self.gateway.handle(
                HttpRequest(method, path, dict(body or {}), dict(headers or {}))
            )
        )

    async def serve_http(self, host: str = "127.0.0.1", port: int = 0):
        """Start the real asyncio HTTP front end (gateway routes →
        asyncio scheduler → worker pool over TCP).  Requires
        ``SchedulerConfig(enabled=True, transport="asyncio")``; returns
        the running :class:`~repro.platform.httpfront.AsyncPlatformServer`.
        """
        front = await self.gateway.serve_http(self, host=host, port=port)
        self._http_fronts.append(front)
        return front

    # -- cluster operations (elasticity + failure injection) ---------------------------

    def fail_node(self, name: str) -> dict[str, dict[str, int]]:
        """Crash a worker VM.

        Pods on the node die (deployments replace them at their next
        reconcile/autoscale tick), the node's DHT partitions fail over
        per each class runtime's replication/persistence configuration,
        and any unflushed write-behind buffer on the node is lost.
        Returns per-class failover statistics.
        """
        self.cluster.remove_node(name)
        if self.federation is not None:
            # Re-plan placement hints before the reconciles below so
            # replacement pods land where the planner says, not on
            # whatever capacity happens to be free.
            self.federation.on_node_failed(name)
        stats: dict[str, dict[str, int]] = {}
        for cls, runtime in self.crm.runtimes.items():
            if name in runtime.dht.nodes:
                stats[cls] = runtime.dht.fail_node(name)
                runtime.router.refresh()
            for svc in runtime.services.values():
                svc.deployment.reconcile()
        if self.durability is not None:
            self.durability.on_node_failed(name, stats)
        if self.scheduler_plane is not None:
            self.scheduler_plane.on_node_failed(name)
        return stats

    def add_node(self, name: str, region: str | None = None) -> None:
        """Join a new worker VM; eligible class runtimes rebalance onto it."""
        labels = {"region": region} if region else {}
        self.cluster.add_node(
            name,
            ResourceSpec(self.config.node_cpu_millis, self.config.node_memory_mb),
            labels=labels,
        )
        for runtime in self.crm.runtimes.values():
            if self.federation is not None:
                # The planner decides eligibility: jurisdiction AND tier
                # pinning, exactly as at deploy time.
                if not self.federation.node_eligible(runtime.resolved.nfr, name):
                    continue
            else:
                jurisdictions = runtime.resolved.nfr.constraint.jurisdictions
                if jurisdictions and region not in jurisdictions:
                    continue
            runtime.dht.add_node(name)
            runtime.router.refresh()
        if self.durability is not None:
            self.durability.on_node_joined(name)
        if self.federation is not None:
            self.federation.on_node_joined(name)

    # -- federation (live migration) ---------------------------------------------------

    def migrate_object(
        self, object_id: str, zone: str, cls: str | None = None
    ) -> dict[str, Any]:
        """Live-migrate an object's primary copy into ``zone``.

        Requires ``FederationConfig(enabled=True)``; returns the handoff
        summary (source/target nodes and zones, version, duration).
        """
        if self.federation is None:
            raise errors.ValidationError(
                "migrate_object requires FederationConfig(enabled=True)"
            )
        cls = cls or split_object_id(object_id)[0]
        if cls is None:
            raise errors.ValidationError(
                f"cannot determine the class of object {object_id!r}; pass cls"
            )
        return self.run(self.federation.migrate_object(cls, object_id, zone))

    # -- chaos ------------------------------------------------------------------------

    def inject_chaos(self, plan: FaultPlan) -> ChaosInjector:
        """Start replaying a fault plan against this platform.

        The injector runs as a simulation process alongside the
        workload; its fault windows feed the NFR report's
        ``availability_under_fault`` verdicts.  Returns the (started)
        injector for inspection.
        """
        self.chaos = ChaosInjector(self, plan)
        self.chaos.start()
        return self.chaos

    # -- diagnostics -------------------------------------------------------------------------------

    def describe(self) -> list[dict[str, Any]]:
        """Summaries of every deployed class runtime."""
        return self.crm.describe()

    def cost_report(self) -> list[dict[str, Any]]:
        """Per-class accrued spend and projected monthly run rate."""
        return self.crm.costs.report()

    # -- observability ---------------------------------------------------------------------

    def render_trace(self, trace_id: str | None = None) -> str:
        """Human-readable span tree(s) from the tracer's buffer.

        With ``trace_id`` set, renders only that trace; otherwise every
        retained trace.  Requires ``tracing_enabled``.
        """
        return self.tracer.render(trace_id)

    def export_chrome_trace(
        self, trace_id: str | None = None, path: str | Path | None = None
    ) -> str:
        """Retained spans as Chrome ``trace_event`` JSON.

        Load the result in ``chrome://tracing`` or Perfetto.  When
        ``path`` is given the JSON is also written there.
        """
        text = chrome_trace_json(self.tracer, trace_id=trace_id, indent=2)
        if path is not None:
            Path(path).write_text(text, encoding="utf-8")
        return text

    def platform_events(self, type: str | None = None) -> list[PlatformEvent]:
        """Recorded control-plane events (optionally one type)."""
        return self.events.events(type)

    def nfr_report(self) -> list[NfrVerdict]:
        """Per-class QoS compliance verdicts from live observations."""
        return nfr_compliance_report(
            self.crm.runtimes,
            self.monitoring,
            chaos=self.chaos,
            qos=self.qos,
            durability=self.durability,
            federation=self.federation,
        )

    def qos_report(self) -> dict[str, Any]:
        """QoS-plane statistics: resolved policies, admission counters,
        fair-queue depths, and shed totals.  Empty when the plane is
        disabled."""
        return self.qos.stats() if self.qos is not None else {}

    def durability_report(self) -> dict[str, Any]:
        """Durability-plane statistics: per-class policies, snapshot
        generations, and the last measured recovery (RPO/RTO).  Empty
        when the plane is disabled."""
        return self.durability.stats() if self.durability is not None else {}

    def federation_report(self) -> dict[str, Any]:
        """Federation-plane statistics: zone topology, placement mode,
        migration counters, and per-class access/rejection counts.
        Empty when the plane is disabled."""
        return self.federation.stats() if self.federation is not None else {}

    def scheduler_report(self) -> dict[str, Any]:
        """Scheduler-plane statistics: worker table (state, node, queue
        depth, epochs), dispatch ledger audit, and parking-buffer
        counters.  Empty when the plane is disabled."""
        return self.scheduler_plane.stats() if self.scheduler_plane is not None else {}

    def metrics_exposition(self) -> str:
        """The metrics registry as OpenMetrics/Prometheus text.  Empty
        when the metrics plane is disabled."""
        return self.metrics.exposition() if self.metrics is not None else ""

    def metrics_report(self, indent: int | None = None) -> str:
        """Instruments plus scraped series history as JSON.  ``"{}"``
        when the metrics plane is disabled."""
        return self.metrics.json_report(indent=indent) if self.metrics is not None else "{}"

    def slo_report(self) -> dict[str, Any]:
        """Burn-rate SLO evaluation: objectives, budget consumption, and
        the alert history.  Empty when the plane (or its evaluator) is
        disabled."""
        return self.metrics.slo_report() if self.metrics is not None else {}

    def observability_report(self) -> dict[str, Any]:
        """The full observability summary: span latency breakdowns,
        event counts, per-class workload stats, DHT/FaaS health, and
        NFR compliance verdicts."""
        report = summary_report(
            tracer=self.tracer,
            events=self.events,
            monitoring=self.monitoring,
            runtimes=self.crm.runtimes,
        )
        report["nfr"] = [verdict.to_dict() for verdict in self.nfr_report()]
        if self.chaos is not None:
            report["chaos"] = self.chaos.summary()
        if self.qos is not None:
            report["qos"] = self.qos.stats()
        if self.durability is not None:
            report["durability"] = self.durability.stats()
        if self.scheduler_plane is not None:
            report["scheduler"] = self.scheduler_plane.stats()
        if self.federation is not None:
            report["federation"] = self.federation.stats()
        if self.metrics is not None:
            report["metrics"] = self.metrics.stats()
            slo = self.metrics.slo_report()
            if slo:
                report["slo"] = slo
        return report

    def snapshot(self) -> dict[str, float]:
        """A flat metrics snapshot across the platform."""
        snap = self.monitoring.snapshot()
        snap["db.write_ops"] = float(self.store.write_ops)
        snap["db.docs_written"] = float(self.store.docs_written)
        snap["db.backlog_s"] = self.store.backlog_seconds
        snap["gateway.requests"] = float(self.gateway.requests)
        snap["engine.invocations"] = float(self.engine.invocations)
        snap["engine.cas_conflicts"] = float(self.engine.cas_conflicts)
        snap["engine.fault_retries"] = float(self.engine.fault_retries)
        snap["engine.timeouts"] = float(self.engine.timeouts)
        snap["engine.stale_reads"] = float(self.engine.stale_reads)
        snap["engine.open_breakers"] = float(self.engine.breakers.open_count())
        if self.qos is not None:
            snap["gateway.rejected"] = float(self.gateway.rejected)
            snap["qos.in_flight"] = float(self.qos.admission.in_flight)
            snap["qos.queue_depth"] = float(self.qos.queue_depth())
            snap["qos.shed"] = float(self.queue.shed)
            snap["qos.rejected_async"] = float(self.queue.rejected)
        if self.durability is not None:
            stats = self.durability.stats()
            snap["durability.cuts"] = float(stats["cuts_total"])
            snap["durability.epoch_writes"] = float(stats["epoch_writes_total"])
            snap["durability.recoveries"] = float(stats["recoveries_total"])
            snap["durability.restores"] = float(stats["restores_total"])
        if self.scheduler_plane is not None:
            audit = self.scheduler_plane.ledger.audit()
            snap["scheduler.accepted"] = float(audit["accepted"])
            snap["scheduler.completed"] = float(audit["completed"])
            snap["scheduler.outstanding"] = float(audit["outstanding"])
            snap["scheduler.requeues"] = float(audit["requeues"])
            snap["scheduler.suppressed"] = float(audit["suppressed"])
            snap["scheduler.workers_live"] = float(self.scheduler_plane.live_workers)
        if self.federation is not None:
            fed = self.federation.stats()
            snap["federation.migrations"] = float(fed["migrations_total"])
            snap["federation.migrations_failed"] = float(fed["migrations_failed"])
            snap["federation.cross_zone"] = float(fed["cross_zone_total"])
            snap["federation.rejections"] = float(fed["rejections_total"])
        return snap

    def shutdown(self) -> None:
        """Stop background loops and flush durable state."""
        if self.optimizer is not None:
            self.optimizer.stop()
        if self.metrics is not None:
            self.metrics.stop()
        if self.durability is not None:
            self.durability.stop()
        self.queue.stop()
        for runtime in self.crm.runtimes.values():
            for svc in runtime.services.values():
                stop = getattr(svc, "stop", None)
                if stop is not None:
                    stop()
        self.flush()
        self.store.close()

    @staticmethod
    def _raise_if_failed(result: InvocationResult) -> None:
        if result.ok:
            return
        message = (
            f"{result.cls or '?'}.{result.fn_name} on "
            f"{result.object_id or '<new>'} failed: {result.error}"
        )
        exc_cls = getattr(errors, result.error_type or "", None)
        if exc_cls is FunctionExecutionError or exc_cls is None:
            raise FunctionExecutionError(message, detail=result.error or "")
        if isinstance(exc_cls, type) and issubclass(exc_cls, OaasError):
            raise exc_cls(message)
        raise FunctionExecutionError(message, detail=result.error or "")

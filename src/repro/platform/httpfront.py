"""A real asyncio HTTP front end over the asyncio scheduler transport.

:class:`AsyncPlatformServer` is what ``SchedulerConfig(transport=
"asyncio")`` buys: a minimal HTTP/1.1 server whose requests flow
**gateway route → scheduler → worker** across event-loop tasks, with
each worker an :class:`~repro.scheduler.transport.aio.AsyncWorkerClient`
connected to an
:class:`~repro.scheduler.transport.aio.AsyncSchedulerServer` over TCP.
Routing reuses the sim gateway's route table verbatim
(:meth:`Gateway._route`) so the HTTP surface is identical; execution
reuses the platform's real invocation engine (each worker drives
``platform.run(engine.invoke(...))`` for its dispatches).

This is deliberately dependency-free HTTP — request line, headers,
``Content-Length`` JSON body, keep-alive — enough to serve concurrent
real clients (curl, load generators, the ``ocli serve`` demo) without
pulling a web framework into the container.
"""

from __future__ import annotations

import asyncio
import json
from typing import TYPE_CHECKING, Any

from repro.errors import OaasError, ValidationError
from repro.invoker.request import InvocationRequest
from repro.platform.gateway import _STATUS_BY_ERROR, HttpRequest, HttpResponse
from repro.scheduler.transport.aio import AsyncSchedulerServer, AsyncWorkerClient
from repro.scheduler.transport.protocol import Dispatch

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.platform.oparaca import Oparaca

__all__ = ["AsyncPlatformServer"]

_MAX_HEADER_BYTES = 64 * 1024
_MAX_BODY_BYTES = 8 * 1024 * 1024


class AsyncPlatformServer:
    """Serve the platform's REST surface over real asyncio sockets."""

    def __init__(
        self,
        platform: "Oparaca",
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        config = platform.config.scheduler
        if not config.enabled or config.transport != "asyncio":
            raise ValidationError(
                "serve_http requires SchedulerConfig(enabled=True, "
                'transport="asyncio")'
            )
        self.platform = platform
        self.host = host
        self.requested_port = port
        self.scheduler = AsyncSchedulerServer(
            config=config, classes=list(platform.crm.runtimes)
        )
        self.workers: list[AsyncWorkerClient] = []
        self.requests = 0
        self._http_server: asyncio.AbstractServer | None = None
        self._next_worker = 0
        self._running = False
        self._spawn_tasks: set[asyncio.Task] = set()
        self.scheduler.on_worker_lost = self._on_worker_lost

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        """Start the scheduler server, the worker pool, and the HTTP
        listener; returns once the pool is serving."""
        self._running = True
        await self.scheduler.start(self.host, 0)
        for _ in range(self.platform.config.scheduler.pool_size):
            await self._spawn_worker()
        await self._wait_serving()
        self._http_server = await asyncio.start_server(
            self._handle_connection, self.host, self.requested_port
        )

    @property
    def port(self) -> int:
        assert self._http_server is not None and self._http_server.sockets
        return self._http_server.sockets[0].getsockname()[1]

    async def stop(self) -> dict[str, int]:
        self._running = False
        if self._http_server is not None:
            self._http_server.close()
            await self._http_server.wait_closed()
        for task in self._spawn_tasks:
            task.cancel()
        await asyncio.gather(*self._spawn_tasks, return_exceptions=True)
        for worker in self.workers:
            await worker.close()
        return await self.scheduler.stop()

    # -- worker pool --------------------------------------------------------

    async def _spawn_worker(self) -> AsyncWorkerClient:
        name = f"worker-{self._next_worker}"
        self._next_worker += 1
        worker = AsyncWorkerClient(
            name,
            self.host,
            self.scheduler.port,
            self._execute,
            heartbeat_interval_s=self.platform.config.scheduler.heartbeat_interval_s,
        )
        await worker.connect()
        self.workers.append(worker)
        return worker

    def _on_worker_lost(self, name: str) -> None:
        if self._running:
            task = asyncio.ensure_future(self._spawn_worker())
            self._spawn_tasks.add(task)
            task.add_done_callback(self._spawn_tasks.discard)

    async def _wait_serving(self, timeout_s: float = 5.0) -> None:
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout_s
        while loop.time() < deadline:
            serving = sum(
                1
                for worker in self.scheduler.core.workers.values()
                if worker.machine.is_dispatchable
            )
            if serving >= self.platform.config.scheduler.pool_size:
                return
            await asyncio.sleep(0.01)
        raise ValidationError("worker pool failed to become ready")

    async def _execute(
        self, dispatch: Dispatch, worker: AsyncWorkerClient
    ) -> dict[str, Any]:
        """Worker executor: drive the platform's real engine.

        The ``platform.run`` call advances the shared sim kernel with no
        ``await`` inside, so cooperative scheduling cannot interleave
        two engine runs — concurrency lives in the sockets and queues
        around it.
        """
        request = InvocationRequest(
            object_id=dispatch.object_id,
            fn_name=dispatch.fn_name,
            cls=dispatch.cls,
            payload=dict(dispatch.payload),
        )
        result = self.platform.run(self.platform.engine.invoke(request))
        output = dict(result.output)
        if result.created_object_id is not None:
            output.setdefault("id", result.created_object_id)
        return {
            "ok": result.ok,
            "output": output,
            "error": result.error,
            "error_type": result.error_type,
        }

    # -- HTTP ---------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    return
                response = await self._respond(request)
                self._write_response(writer, response)
                await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> HttpRequest | None:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            return None
        if len(head) > _MAX_HEADER_BYTES:
            return None
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) < 2:
            return None
        method, path = parts[0].upper(), parts[1]
        headers = {}
        for line in lines[1:]:
            if ":" in line:
                key, _, value = line.partition(":")
                headers[key.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > _MAX_BODY_BYTES:
            return None
        body: dict[str, Any] = {}
        if length:
            raw = await reader.readexactly(length)
            try:
                parsed = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                parsed = None
            if isinstance(parsed, dict):
                body = parsed
        return HttpRequest(method, path, body)

    async def _respond(self, http: HttpRequest) -> HttpResponse:
        self.requests += 1
        admin = self._scheduler_route(http)
        if admin is not None:
            return admin
        storage = self.platform.gateway._storage_route(http)
        if storage is not None:
            if isinstance(storage, HttpResponse):
                return storage
            # Query routes are sim generators; drive them on the shared
            # kernel like the workers drive invocations (no await inside,
            # so engine runs cannot interleave).
            try:
                return self.platform.run(storage)
            except OaasError as exc:
                status = _STATUS_BY_ERROR.get(type(exc).__name__, 500)
                return HttpResponse(
                    status, {"error": str(exc), "type": type(exc).__name__}
                )
        routed = self.platform.gateway._route(http)
        if routed is None:
            return HttpResponse(
                404,
                {"error": f"no route {http.method} {http.path}", "type": "NoRouteError"},
            )
        if isinstance(routed, HttpResponse):
            return routed
        result = await self.scheduler.submit(routed)
        if result.ok:
            status = 201 if routed.fn_name == "new" else 200
            return HttpResponse(status, dict(result.output))
        status = _STATUS_BY_ERROR.get(result.error_type or "", 500)
        return HttpResponse(
            status, {"error": result.error, "type": result.error_type}
        )

    def _scheduler_route(self, http: HttpRequest) -> HttpResponse | None:
        """Same admin surface as the sim gateway, served from the async
        scheduler's state."""
        parts = [p for p in http.path.split("/") if p]
        if len(parts) < 2 or parts[0] != "api" or parts[1] != "workers":
            return None
        if len(parts) == 2 and http.method == "GET":
            workers = self.scheduler.describe_workers()
            return HttpResponse(
                200,
                {
                    "workers": workers,
                    "count": len(workers),
                    "ledger": self.scheduler.core.ledger.audit(),
                },
            )
        if len(parts) == 4 and parts[3] == "drain" and http.method == "POST":
            from repro.errors import SchedulingError

            name = parts[2]
            try:
                self.scheduler.drain(name)
            except SchedulingError as exc:
                status = 404 if "unknown worker" in str(exc) else 409
                return HttpResponse(
                    status, {"error": str(exc), "type": "SchedulingError"}
                )
            worker = self.scheduler.core.workers[name]
            return HttpResponse(
                202, {"worker": name, "state": worker.machine.state.value}
            )
        return None

    def _write_response(
        self, writer: asyncio.StreamWriter, response: HttpResponse
    ) -> None:
        payload = json.dumps(response.body, sort_keys=True).encode("utf-8")
        head = (
            f"HTTP/1.1 {response.status} {_reason(response.status)}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            "Connection: keep-alive\r\n"
            "\r\n"
        ).encode("latin-1")
        writer.write(head + payload)

    def on_deploy(self, cls: str) -> None:
        """Platform hook: a deploy while serving installs everywhere."""
        self.scheduler.on_deploy(cls)


_REASONS = {
    200: "OK",
    201: "Created",
    202: "Accepted",
    400: "Bad Request",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


def _reason(status: int) -> str:
    return _REASONS.get(status, "Status")

"""Object handles — the OOP developer experience over the platform.

OaaS "borrows the notion of 'object' from object-oriented programming";
this client makes that literal: a :class:`ObjectHandle` proxies one
cloud object, and *method calls on the handle are function invocations
on the object*::

    image = platform.create("Image", width=640)
    image.resize(width=128)           # invokes the 'resize' function
    image.state["width"]              # -> 128
    image.upload("image", png_bytes)  # presigned file upload

Handles are thin: they hold only the object id, so they stay valid
across state changes, node failures, and even process boundaries (ids
are plain strings).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.errors import UnknownFunctionError
from repro.invoker.engine import split_object_id

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.invoker.request import InvocationResult
    from repro.platform.oparaca import Oparaca

__all__ = ["ObjectHandle"]


class ObjectHandle:
    """A live reference to one cloud object."""

    __slots__ = ("_platform", "id")

    def __init__(self, platform: "Oparaca", object_id: str) -> None:
        self._platform = platform
        self.id = object_id

    # -- core operations ----------------------------------------------------

    @property
    def cls(self) -> str:
        """The object's class name (from its id prefix)."""
        prefix, _ = split_object_id(self.id)
        return prefix or self.record()["cls"]

    def record(self) -> dict[str, Any]:
        """The full record: id, cls, version, state, files."""
        return self._platform.get_object(self.id)

    @property
    def state(self) -> dict[str, Any]:
        """A snapshot of the structured state."""
        return self.record()["state"]

    @property
    def version(self) -> int:
        return int(self.record()["version"])

    @property
    def exists(self) -> bool:
        """Whether the object is still resolvable."""
        from repro.errors import OaasError

        try:
            self.record()
            return True
        except OaasError:
            return False

    def invoke(self, fn_name: str, /, **payload: Any) -> "InvocationResult":
        """Invoke a function on this object (raises on failure)."""
        return self._platform.invoke(self.id, fn_name, payload)

    def update(self, **state: Any) -> int:
        """Patch structured state; returns the new version."""
        return self._platform.update_object(self.id, state)

    def delete(self) -> None:
        self._platform.delete_object(self.id)

    # -- unstructured data ----------------------------------------------------

    def upload(self, key: str, data: bytes, content_type: str = "application/octet-stream") -> str:
        """Upload bytes for a FILE state key via a presigned URL."""
        return self._platform.upload_file(self.id, key, data, content_type)

    def download(self, key: str) -> bytes:
        """Download a FILE state key via a presigned URL."""
        return self._platform.download_file(self.id, key)

    def file_url(self, key: str, method: str = "GET") -> str:
        """A presigned URL for a FILE state key."""
        result = self._platform.invoke(
            self.id, "file-url", {"key": key, "method": method}
        )
        return result.output["url"]

    # -- OOP sugar ---------------------------------------------------------------

    def __getattr__(self, name: str) -> Any:
        """Unknown attributes become function invocations: calling
        ``handle.resize(width=5)`` invokes ``resize`` on the object.

        Only methods actually bound to the object's class resolve, so
        typos fail immediately with the class's method list.
        """
        if name.startswith("_"):
            raise AttributeError(name)
        resolved = self._platform.crm.resolved(self.cls)
        from repro.invoker.engine import BUILTIN_METHODS

        if resolved.binding(name) is None and name not in BUILTIN_METHODS:
            raise UnknownFunctionError(
                f"class {resolved.name!r} has no function {name!r}; "
                f"available: {list(resolved.method_names)}"
            )

        def call(**payload: Any) -> "InvocationResult":
            return self._platform.invoke(self.id, name, payload)

        call.__name__ = name
        return call

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ObjectHandle) and other.id == self.id

    def __hash__(self) -> int:
        return hash(self.id)

    def __repr__(self) -> str:
        return f"<ObjectHandle {self.id}>"

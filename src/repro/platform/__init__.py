"""The Oparaca platform facade, gateway, and CLI."""

from repro.platform.gateway import Gateway, HttpRequest, HttpResponse
from repro.platform.oparaca import Oparaca, PlatformConfig

__all__ = ["Gateway", "HttpRequest", "HttpResponse", "Oparaca", "PlatformConfig"]

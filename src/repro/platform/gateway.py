"""REST-style gateway (tutorial step 5: "Developers can use CLI, REST
API, or gRPC to interact with objects").

Routes:

========  =========================================  ==================
method    path                                       action
========  =========================================  ==================
POST      /api/classes/{cls}                         create object
GET       /api/classes/{cls}/objects                 list object ids
GET       /api/classes/{cls}/objects?where=...       query objects
GET       /api/objects/{oid}                         read object
PATCH     /api/objects/{oid}                         update state
DELETE    /api/objects/{oid}                         delete object
POST      /api/objects/{oid}/invokes/{fn}            invoke function
GET       /api/objects/{oid}/files/{key}             presigned GET URL
PUT       /api/objects/{oid}/files/{key}             presigned PUT URL
POST      /api/classes/{cls}/snapshots               snapshot cut [d]
GET       /api/classes/{cls}/snapshots               list generations [d]
POST      /api/classes/{cls}/restore                 PIT restore [d]
GET       /api/workers                               list workers [s]
POST      /api/workers/{name}/drain                  drain worker [s]
POST      /api/classes/{cls}/objects/{oid}/migrate   live migration [f]
========  =========================================  ==================

Routes marked ``[d]`` exist only when the durability plane is enabled,
routes marked ``[s]`` only when the scheduler plane is enabled, and
routes marked ``[f]`` only when the federation plane is enabled;
otherwise they fall through to the usual 404 ``NoRouteError`` body, so
a baseline platform's route surface is unchanged.

With the federation plane, requests may carry an ``x-origin-zone``
header (or inherit ``FederationConfig.default_origin_zone``); the
engine then geo-routes the invocation to the nearest eligible replica
and enforces jurisdiction constraints (HTTP 451 on violation).

Responses carry HTTP-ish status codes mapped from the invocation
result's error type, so clients behave as they would against the real
platform.
"""

from __future__ import annotations

import dataclasses
import urllib.parse
from dataclasses import dataclass, field
from typing import Any, Generator, Mapping

from repro.errors import OaasError, ValidationError
from repro.invoker.engine import InvocationEngine, split_object_id
from repro.invoker.request import InvocationRequest
from repro.monitoring.tracing import Tracer
from repro.qos.admission import REJECT_CONCURRENCY
from repro.qos.plane import QosPlane
from repro.sim.kernel import Environment, Process

__all__ = ["HttpRequest", "HttpResponse", "Gateway"]

_STATUS_BY_ERROR = {
    "UnknownObjectError": 404,
    "UnknownClassError": 404,
    "UnknownFunctionError": 404,
    "NoRouteError": 404,
    "KeyNotFoundError": 404,
    "BucketNotFoundError": 404,
    "SnapshotNotFoundError": 404,
    "ValidationError": 400,
    "PackageError": 400,
    "QueryError": 400,
    "InvocationError": 403,
    "DataflowError": 400,
    "ConcurrentModificationError": 409,
    "MigrationError": 409,
    "RateLimitedError": 429,
    "JurisdictionError": 451,
    "FunctionExecutionError": 500,
    "InvocationTimeoutError": 504,
    "NetworkPartitionError": 503,
    "TransportError": 503,
    "ServiceUnavailableError": 503,
    "OverloadError": 503,
    "StorageError": 500,
    "InternalError": 500,
}


@dataclass(frozen=True)
class HttpRequest:
    """A minimal HTTP request representation."""

    method: str
    path: str
    body: Mapping[str, Any] = field(default_factory=dict)
    #: Request headers (case-insensitive; normalised to lower-case).
    #: The federation plane reads ``x-origin-zone`` for geo-routing.
    headers: Mapping[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "method", self.method.upper())
        object.__setattr__(self, "body", dict(self.body))
        object.__setattr__(
            self, "headers", {k.lower(): v for k, v in dict(self.headers).items()}
        )


@dataclass(frozen=True)
class HttpResponse:
    """A minimal HTTP response representation."""

    status: int
    body: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "body", dict(self.body))

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


class Gateway:
    """Translates REST calls into invocation requests."""

    def __init__(
        self,
        env: Environment,
        engine: InvocationEngine,
        overhead_s: float = 0.0002,
        tracer: Tracer | None = None,
        qos: QosPlane | None = None,
        durability: Any | None = None,
        scheduler: Any | None = None,
        federation: Any | None = None,
    ) -> None:
        self.env = env
        self.engine = engine
        self.overhead_s = overhead_s
        # Explicit None check: an empty Tracer is falsy (it has __len__).
        self.tracer = tracer if tracer is not None else Tracer(env)
        self.qos = qos
        self.durability = durability
        self.scheduler = scheduler
        self.federation = federation
        self.requests = 0
        self.rejected = 0

    def handle(self, request: HttpRequest) -> Process:
        """Process one HTTP request; resolves to an :class:`HttpResponse`."""
        return self.env.process(self._handle(request))

    async def serve_http(self, platform: Any, *, host: str = "127.0.0.1", port: int = 0):
        """Serve this gateway's route table over a real asyncio HTTP
        front end, with invocations flowing through the asyncio
        scheduler transport to a worker pool over TCP.  Requires
        ``SchedulerConfig(enabled=True, transport="asyncio")``."""
        from repro.platform.httpfront import AsyncPlatformServer

        front = AsyncPlatformServer(platform, host=host, port=port)
        await front.start()
        return front

    def _handle(self, http: HttpRequest) -> Generator[Any, Any, HttpResponse]:
        self.requests += 1
        try:
            return (yield from self._handle_inner(http))
        except OaasError as exc:
            # Defensive boundary: platform errors raised outside the
            # engine (routing, listing) still produce structured payloads.
            status = _STATUS_BY_ERROR.get(type(exc).__name__, 500)
            return HttpResponse(status, {"error": str(exc), "type": type(exc).__name__})
        except Exception as exc:  # noqa: BLE001 - the REST boundary
            return HttpResponse(
                500,
                {
                    "error": f"internal platform error: {type(exc).__name__}: {exc}",
                    "type": "InternalError",
                },
            )

    def _handle_inner(self, http: HttpRequest) -> Generator[Any, Any, HttpResponse]:
        admin = self._storage_route(http)
        if admin is None:
            admin = self._durability_route(http)
        if admin is None:
            admin = self._scheduler_route(http)
        if admin is None:
            admin = self._federation_route(http)
        if admin is not None:
            if self.overhead_s:
                yield self.env.timeout(self.overhead_s)
            if isinstance(admin, HttpResponse):
                return admin
            return (yield from admin)
        invocation = self._route(http)
        if self.federation is not None and isinstance(invocation, InvocationRequest):
            origin = (
                http.headers.get("x-origin-zone")
                or self.federation.config.default_origin_zone
            )
            if origin is not None:
                invocation = dataclasses.replace(invocation, origin_zone=origin)
        admitted = False
        if isinstance(invocation, InvocationRequest) and self.qos is not None:
            # Admission runs before any overhead is spent: a rejected
            # request costs the platform (almost) nothing, which is what
            # makes declared throughput enforceable under flood.
            cls = invocation.cls or split_object_id(invocation.object_id)[0]
            decision = self.qos.admit_http(cls)
            if not decision.admitted:
                self.rejected += 1
                # Per-class rate refusals are the client's fault (429);
                # a full platform ceiling is the platform's (503).
                if decision.reason == REJECT_CONCURRENCY:
                    status, error_type = 503, "OverloadError"
                else:
                    status, error_type = 429, "RateLimitedError"
                return HttpResponse(
                    status,
                    {
                        "error": (
                            f"admission rejected ({decision.reason}) for "
                            f"class {decision.cls or '?'}"
                        ),
                        "type": error_type,
                        "retry_after_s": round(decision.retry_after_s, 6),
                    },
                )
            admitted = True
        try:
            span = None
            if self.tracer.enabled and isinstance(invocation, InvocationRequest):
                trace_id = invocation.trace_id or invocation.request_id
                span = self.tracer.start(
                    trace_id,
                    f"gateway {http.method} {http.path}",
                    parent=invocation.trace_parent,
                )
                invocation = dataclasses.replace(
                    invocation, trace_id=trace_id, trace_parent=span.span_id
                )
            if self.overhead_s:
                yield self.env.timeout(self.overhead_s)
            if invocation is None:
                return HttpResponse(
                    404,
                    {
                        "error": f"no route {http.method} {http.path}",
                        "type": "NoRouteError",
                    },
                )
            if isinstance(invocation, HttpResponse):
                return invocation
            result = yield self.engine.invoke(invocation)
            if result.ok:
                status = 201 if invocation.fn_name == "new" else 200
                body: dict[str, Any] = dict(result.output)
                if result.created_object_id is not None:
                    body.setdefault("id", result.created_object_id)
                self.tracer.finish(span, status=status)
                return HttpResponse(status, body)
            status = _STATUS_BY_ERROR.get(result.error_type or "", 500)
            self.tracer.finish(span, status=status)
            return HttpResponse(status, {"error": result.error, "type": result.error_type})
        finally:
            if admitted:
                self.qos.release_http()

    def _durability_route(
        self, http: HttpRequest
    ) -> Generator | HttpResponse | None:
        """Durability admin routes, live only when the plane is wired.

        Returns ``None`` (fall through to the usual routing — and so the
        baseline 404 ``NoRouteError``) when the plane is off or the path
        does not match."""
        if self.durability is None:
            return None
        parts = [p for p in http.path.split("/") if p]
        if len(parts) != 4 or parts[0] != "api" or parts[1] != "classes":
            return None
        cls = parts[2]
        if parts[3] == "snapshots":
            if http.method == "POST":
                return self._snapshot_class(cls)
            if http.method == "GET":
                generations = self.durability.generations(cls)
                return HttpResponse(
                    200,
                    {"class": cls, "generations": generations, "count": len(generations)},
                )
            return None
        if parts[3] == "restore" and http.method == "POST":
            return self._restore_class(cls, http.body)
        return None

    def _snapshot_class(self, cls: str) -> Generator[Any, Any, HttpResponse]:
        manifest = yield self.durability.snapshot_class(cls)
        if manifest is None:
            return HttpResponse(
                200, {"class": cls, "generation": None, "captured": 0}
            )
        return HttpResponse(
            201,
            {
                "class": cls,
                "generation": manifest["generation"],
                "captured": len(manifest["captured"]),
                "cut_time": manifest["cut_time"],
            },
        )

    def _restore_class(
        self, cls: str, body: Mapping[str, Any]
    ) -> Generator[Any, Any, HttpResponse]:
        at = body.get("at")
        if at is not None:
            if isinstance(at, bool) or not isinstance(at, (int, float)):
                raise ValidationError(f"restore 'at' must be a number, got {at!r}")
            at = float(at)
        object_id = body.get("object")
        if object_id is not None:
            summary = yield self.durability.restore_object(cls, str(object_id), at)
        else:
            summary = yield self.durability.restore_class(cls, at)
        return HttpResponse(200, dict(summary))

    def _scheduler_route(self, http: HttpRequest) -> HttpResponse | None:
        """Worker-pool admin routes, live only when the scheduler plane
        is wired; otherwise fall through to the baseline 404."""
        if self.scheduler is None:
            return None
        parts = [p for p in http.path.split("/") if p]
        if len(parts) < 2 or parts[0] != "api" or parts[1] != "workers":
            return None
        if len(parts) == 2 and http.method == "GET":
            workers = self.scheduler.describe_workers()
            return HttpResponse(
                200,
                {
                    "workers": workers,
                    "count": len(workers),
                    "ledger": self.scheduler.ledger.audit(),
                },
            )
        if len(parts) == 4 and parts[3] == "drain" and http.method == "POST":
            from repro.errors import SchedulingError

            name = parts[2]
            try:
                worker = self.scheduler.drain_worker(name)
            except SchedulingError as exc:
                status = 404 if "unknown worker" in str(exc) else 409
                return HttpResponse(
                    status, {"error": str(exc), "type": "SchedulingError"}
                )
            return HttpResponse(
                202, {"worker": name, "state": worker.state.value}
            )
        return None

    def _federation_route(
        self, http: HttpRequest
    ) -> Generator | HttpResponse | None:
        """Live-migration admin route, live only when the federation
        plane is wired; otherwise fall through to the baseline 404."""
        if self.federation is None:
            return None
        parts = [p for p in http.path.split("/") if p]
        if (
            len(parts) != 6
            or parts[0] != "api"
            or parts[1] != "classes"
            or parts[3] != "objects"
            or parts[5] != "migrate"
            or http.method != "POST"
        ):
            return None
        return self._migrate_object(parts[2], parts[4], http.body)

    def _migrate_object(
        self, cls: str, object_id: str, body: Mapping[str, Any]
    ) -> Generator[Any, Any, HttpResponse]:
        zone = body.get("zone")
        if not zone or not isinstance(zone, str):
            raise ValidationError(
                "migrate requires a target 'zone' (string) in the body"
            )
        summary = yield self.federation.migrate_object(cls, object_id, zone)
        return HttpResponse(200, dict(summary))

    def _storage_route(
        self, http: HttpRequest
    ) -> Generator | HttpResponse | None:
        """The object-query surface: ``GET /api/classes/{cls}/objects``
        with a query string.

        Only paths carrying a ``?`` are considered, so a platform that
        never queries sees the exact route behavior it always had (the
        plain objects listing keeps its historical route in
        :meth:`_route`).
        """
        if "?" not in http.path:
            return None
        path, _, query_string = http.path.partition("?")
        parts = [p for p in path.split("/") if p]
        if (
            len(parts) != 4
            or parts[0] != "api"
            or parts[1] != "classes"
            or parts[3] != "objects"
            or http.method != "GET"
        ):
            return None
        params = dict(urllib.parse.parse_qsl(query_string, keep_blank_values=True))
        return self._query_objects_route(parts[2], params)

    def _query_objects_route(
        self, cls: str, params: Mapping[str, str]
    ) -> Generator[Any, Any, HttpResponse]:
        from repro.storage.query import parse_query

        resolved = self.engine.directory.resolved(cls)
        schema = {
            spec.name: spec.dtype for spec in resolved.state if not spec.is_file
        }
        query = parse_query(params, schema)
        result = yield self.engine.query_objects(cls, query)
        body: dict[str, Any] = {
            "class": cls,
            "objects": result.docs,
            "count": len(result.docs),
            "scanned": result.scanned,
            "cursor": result.next_cursor,
        }
        if params.get("explain"):
            body["plan"] = result.plan
            body["index_used"] = result.index_used
        return HttpResponse(200, body)

    def _route(self, http: HttpRequest) -> InvocationRequest | HttpResponse | None:
        parts = [p for p in http.path.split("/") if p]
        if len(parts) < 2 or parts[0] != "api":
            return None
        if parts[1] == "classes" and len(parts) == 3 and http.method == "POST":
            return InvocationRequest(object_id="", fn_name="new", cls=parts[2], payload=http.body)
        if (
            parts[1] == "classes"
            and len(parts) == 4
            and parts[3] == "objects"
            and http.method == "GET"
        ):
            from repro.errors import UnknownClassError

            try:
                ids = self.engine.list_objects(parts[2])
            except UnknownClassError as exc:
                return HttpResponse(404, {"error": str(exc)})
            return HttpResponse(200, {"objects": ids, "count": len(ids)})
        if parts[1] != "objects" or len(parts) < 3:
            return None
        object_id = parts[2]
        if len(parts) == 3:
            if http.method == "GET":
                return InvocationRequest(object_id=object_id, fn_name="get")
            if http.method == "PATCH":
                return InvocationRequest(object_id=object_id, fn_name="update", payload=http.body)
            if http.method == "DELETE":
                return InvocationRequest(object_id=object_id, fn_name="delete")
            return HttpResponse(405, {"error": f"{http.method} not allowed on objects"})
        if len(parts) == 5 and parts[3] == "invokes" and http.method == "POST":
            return InvocationRequest(object_id=object_id, fn_name=parts[4], payload=http.body)
        if len(parts) == 5 and parts[3] == "files":
            if http.method in ("GET", "PUT"):
                return InvocationRequest(
                    object_id=object_id,
                    fn_name="file-url",
                    payload={"key": parts[4], "method": http.method},
                )
            return HttpResponse(405, {"error": f"{http.method} not allowed on files"})
        return None

"""NFR compliance reporting — the audit side of the §III-B loop.

The optimizer *reacts* to the gap between declared QoS and observed
behaviour; this module *reports* it: each deployed class's live
:class:`~repro.monitoring.collector.ClassObservations` are joined
against its declared :class:`~repro.model.nfr.QosRequirement` and every
set target yields a per-class verdict (met / violated, by margin), so
the platform's self-optimization is checkable rather than taken on
faith.

Throughput verdicts follow the optimizer's semantics: a declared
throughput is a *capacity* the class must be able to sustain, so falling
short only counts as a violation while the class's services are
saturated — an idle class trivially meets its capacity requirement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Mapping

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.chaos.injector import ChaosInjector
    from repro.durability.plane import DurabilityPlane
    from repro.federation.plane import FederationPlane
    from repro.monitoring.collector import MonitoringSystem
    from repro.qos.plane import QosPlane

__all__ = ["NfrVerdict", "nfr_compliance_report", "format_nfr_report"]


@dataclass(frozen=True)
class NfrVerdict:
    """One requirement of one class, judged against live observations."""

    cls: str
    requirement: str  # "latency_p99_ms" | "throughput_rps" | "availability"
    target: float
    observed: float
    met: bool
    #: Positive margin = headroom, negative = how far past the target.
    margin: float
    detail: str = ""

    @property
    def verdict(self) -> str:
        return "met" if self.met else "violated"

    def to_dict(self) -> dict[str, Any]:
        return {
            "cls": self.cls,
            "requirement": self.requirement,
            "target": self.target,
            "observed": self.observed,
            "verdict": self.verdict,
            "margin": self.margin,
            "detail": self.detail,
        }


def _saturated(runtime: Any) -> bool:
    """Whether any of the class's services is running at capacity
    (mirrors the optimizer's 80%-of-slots saturation test)."""
    for svc in getattr(runtime, "services", {}).values():
        concurrency = svc.definition.provision.concurrency
        replicas = svc.replicas
        if replicas > 0 and svc.total_in_flight() >= replicas * concurrency * 0.8:
            return True
    return False


def nfr_compliance_report(
    runtimes: Mapping[str, Any],
    monitoring: "MonitoringSystem",
    chaos: "ChaosInjector | None" = None,
    qos: "QosPlane | None" = None,
    durability: "DurabilityPlane | None" = None,
    federation: "FederationPlane | None" = None,
) -> list[NfrVerdict]:
    """Judge every deployed class's declared QoS against observations.

    ``runtimes`` maps class name to its runtime (duck-typed: only
    ``resolved.nfr.qos`` and ``services`` are read — the CRM's
    ``runtimes`` mapping fits directly).  Classes with no declared QoS
    produce no verdicts.

    With a ``chaos`` injector supplied, classes declaring an
    availability target additionally get an ``availability_under_fault``
    verdict: the success fraction restricted to invocations completed
    while the injector held at least one fault active — the number that
    separates a replicated class riding out a crash from an ephemeral
    one losing its state.

    With a ``qos`` plane supplied, latency-declared classes also get a
    ``latency_p95_ms`` verdict against the same target — the percentile
    the overload controller's brownout trigger watches, so the report
    shows the exact signal that drives shedding.

    With a ``durability`` plane supplied, classes that have gone through
    a measured crash recovery get a ``durability_rpo_s`` verdict: the
    sim-seconds of acknowledged writes lost, judged against the policy's
    RPO budget (0 for ``persistence: strong``, one snapshot interval for
    ``standard``).

    With a ``federation`` plane supplied, jurisdiction-constrained
    classes get a ``jurisdiction`` verdict: the count of rejected
    cross-jurisdiction accesses, judged against a target of zero.
    """
    fault_counts = chaos.fault_counts() if chaos is not None else {}
    qos_plane = qos  # the loop below rebinds ``qos`` to each class's block
    verdicts: list[NfrVerdict] = []
    for cls in sorted(runtimes):
        runtime = runtimes[cls]
        if durability is not None:
            verdicts.extend(_durability_verdicts(cls, durability))
        if federation is not None:
            verdicts.extend(_jurisdiction_verdicts(cls, runtime, federation))
        qos = runtime.resolved.nfr.qos
        if qos.is_empty:
            continue
        obs = monitoring.for_class(cls)
        window_samples = len(obs.window)

        if qos.latency_ms is not None:
            if window_samples:
                observed = obs.latency_p99_ms()
                source = f"window p99 over {window_samples} samples"
            else:
                observed = obs.latency.percentile(99) * 1000.0 if obs.latency.count else 0.0
                source = f"lifetime p99 over {obs.latency.count} samples"
            verdicts.append(
                NfrVerdict(
                    cls=cls,
                    requirement="latency_p99_ms",
                    target=qos.latency_ms,
                    observed=observed,
                    met=observed <= qos.latency_ms,
                    margin=qos.latency_ms - observed,
                    detail=source,
                )
            )
            if qos_plane is not None and window_samples:
                observed_p95 = obs.latency_pct_ms(95)
                verdicts.append(
                    NfrVerdict(
                        cls=cls,
                        requirement="latency_p95_ms",
                        target=qos.latency_ms,
                        observed=observed_p95,
                        met=observed_p95 <= qos.latency_ms,
                        margin=qos.latency_ms - observed_p95,
                        detail=f"brownout signal over {window_samples} samples",
                    )
                )

        if qos.throughput_rps is not None:
            observed = obs.throughput_rps
            saturated = _saturated(runtime)
            met = observed >= qos.throughput_rps or not saturated
            detail = (
                "services saturated"
                if saturated
                else "capacity target; services not saturated"
            )
            verdicts.append(
                NfrVerdict(
                    cls=cls,
                    requirement="throughput_rps",
                    target=qos.throughput_rps,
                    observed=observed,
                    met=met,
                    margin=observed - qos.throughput_rps,
                    detail=detail,
                )
            )

        if qos.availability is not None:
            if window_samples:
                observed = 1.0 - obs.error_rate
                source = f"window over {window_samples} samples"
            else:
                total = obs.completed + obs.failed
                observed = obs.completed / total if total else 1.0
                source = f"lifetime over {total} invocations"
            verdicts.append(
                NfrVerdict(
                    cls=cls,
                    requirement="availability",
                    target=qos.availability,
                    observed=observed,
                    met=observed >= qos.availability,
                    margin=observed - qos.availability,
                    detail=source,
                )
            )
            completed, failed = fault_counts.get(cls, (0, 0))
            under_fault = completed + failed
            if under_fault:
                observed = completed / under_fault
                verdicts.append(
                    NfrVerdict(
                        cls=cls,
                        requirement="availability_under_fault",
                        target=qos.availability,
                        observed=observed,
                        met=observed >= qos.availability,
                        margin=observed - qos.availability,
                        detail=f"{under_fault} invocations during fault windows",
                    )
                )
    return verdicts


def _durability_verdicts(
    cls: str, durability: "DurabilityPlane"
) -> list[NfrVerdict]:
    """RPO verdict for a class whose crash recovery has been measured."""
    policy = durability.policy_for(cls)
    tracker = durability.tracker_for(cls)
    if policy is None or not policy.enabled or tracker is None:
        return []
    recovery = tracker.last_recovery
    if recovery is None:
        return []
    observed = float(recovery["rpo_s"])
    target = float(policy.rpo_budget_s)
    return [
        NfrVerdict(
            cls=cls,
            requirement="durability_rpo_s",
            target=target,
            observed=observed,
            met=observed <= target,
            margin=target - observed,
            detail=(
                f"{recovery['lost_writes']} write(s) lost, "
                f"RTO {recovery['rto_s']:.4f}s after node "
                f"{recovery['node']} crash"
            ),
        )
    ]


def _jurisdiction_verdicts(
    cls: str, runtime: Any, federation: "FederationPlane"
) -> list[NfrVerdict]:
    """Jurisdiction verdict for a constrained class: the target is zero
    rejected cross-jurisdiction accesses; every rejection counted by the
    federation plane is one violation."""
    jurisdictions = runtime.resolved.nfr.constraint.jurisdictions
    if not jurisdictions:
        return []
    stats = federation.class_stats(cls)
    rejections = float(stats["rejections"])
    return [
        NfrVerdict(
            cls=cls,
            requirement="jurisdiction",
            target=0.0,
            observed=rejections,
            met=rejections == 0.0,
            margin=-rejections,
            detail=(
                f"constrained to {sorted(jurisdictions)}; "
                f"{stats['accesses']} access(es), "
                f"{int(rejections)} rejected"
            ),
        )
    ]


def format_nfr_report(verdicts: list[NfrVerdict]) -> str:
    """Render verdicts as a per-class compliance table."""
    if not verdicts:
        return "(no classes declare QoS requirements)"
    lines = [
        f"{'class':<16} {'requirement':<26} {'target':>10} {'observed':>10} "
        f"{'margin':>10}  verdict"
    ]
    for v in verdicts:
        mark = "met" if v.met else "VIOLATED"
        # Availability targets like 0.999 need more precision than
        # millisecond/rps targets to be distinguishable from 1.0.
        digits = 4 if v.requirement.startswith("availability") else 2
        lines.append(
            f"{v.cls:<16} {v.requirement:<26} {v.target:>10.{digits}f} "
            f"{v.observed:>10.{digits}f} {v.margin:>+10.{digits}f}  {mark}"
        )
    violated = sum(1 for v in verdicts if not v.met)
    lines.append(f"{len(verdicts)} requirement(s) checked, {violated} violated")
    return "\n".join(lines)

"""Exporters for traces, events, and platform summaries.

Two consumable formats:

* :func:`to_chrome_trace` / :func:`chrome_trace_json` — the Chrome
  ``trace_event`` JSON format, loadable in ``chrome://tracing`` or
  Perfetto.  Each span becomes a complete ("X") event; traces map to
  thread lanes so concurrent invocations render side by side.
* :func:`summary_report` / :func:`format_summary` — an aggregate view:
  per-span-name latency breakdowns, control-plane event counts, and
  per-class data-plane health (throughput, p99, DHT hit rate, pending
  write-behind, cold starts, queue depth).
"""

from __future__ import annotations

import json
import math
from typing import TYPE_CHECKING, Any, Iterable, Mapping

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.monitoring.collector import MonitoringSystem
    from repro.monitoring.events import EventLog
    from repro.monitoring.tracing import Span, Tracer

__all__ = [
    "to_chrome_trace",
    "chrome_trace_json",
    "span_breakdown",
    "summary_report",
    "format_summary",
]

_US = 1_000_000.0  # trace_event timestamps are microseconds


def to_chrome_trace(spans: "Iterable[Span]") -> dict[str, Any]:
    """Convert spans into a Chrome ``trace_event`` document.

    Every trace id gets its own ``tid`` lane under one ``pid``; span
    attributes travel in ``args`` together with the span/parent ids, so
    the tree can be reconstructed from the export alone.
    """
    lanes: dict[str, int] = {}
    events: list[dict[str, Any]] = []
    for span in spans:
        tid = lanes.setdefault(span.trace_id, len(lanes) + 1)
        end = span.end if span.end is not None else span.start
        events.append(
            {
                "name": span.name,
                "cat": "oaas",
                "ph": "X",
                "ts": span.start * _US,
                "dur": (end - span.start) * _US,
                "pid": 1,
                "tid": tid,
                "args": {
                    "trace_id": span.trace_id,
                    "span_id": span.span_id,
                    "parent_id": span.parent_id,
                    **span.attrs,
                },
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"exporter": "repro.monitoring.export"},
    }


def chrome_trace_json(tracer: "Tracer", trace_id: str | None = None, indent: int | None = None) -> str:
    """Serialize a tracer's spans (or one trace) as trace_event JSON."""
    spans = tracer.trace(trace_id) if trace_id is not None else tracer.spans()
    return json.dumps(to_chrome_trace(spans), indent=indent, default=str)


def _percentile(ordered: list[float], pct: float) -> float:
    if not ordered:
        return 0.0
    rank = max(0, min(len(ordered) - 1, math.ceil(pct / 100 * len(ordered)) - 1))
    return ordered[rank]


def span_breakdown(spans: "Iterable[Span]") -> dict[str, dict[str, float]]:
    """Per-span-name latency statistics over *finished* spans.

    Span names are collapsed to their first word (``task.offload
    Image.resize`` → ``task.offload``) so one row summarizes a phase
    across services.
    """
    groups: dict[str, list[float]] = {}
    for span in spans:
        if span.end is None:
            continue
        groups.setdefault(span.name.split(" ", 1)[0], []).append(span.duration_s)
    out: dict[str, dict[str, float]] = {}
    for name in sorted(groups):
        durations = sorted(groups[name])
        out[name] = {
            "count": len(durations),
            "mean_ms": sum(durations) / len(durations) * 1000.0,
            "p95_ms": _percentile(durations, 95) * 1000.0,
            "max_ms": durations[-1] * 1000.0,
        }
    return out


def summary_report(
    tracer: "Tracer | None" = None,
    events: "EventLog | None" = None,
    monitoring: "MonitoringSystem | None" = None,
    runtimes: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """Aggregate observability report across whatever sources exist.

    ``runtimes`` is a mapping ``cls -> ClassRuntime`` (duck-typed: only
    ``dht`` and ``services`` are read) contributing DHT hit rates,
    pending write-behind, cold-start counts, and queue depths.
    """
    report: dict[str, Any] = {}
    if tracer is not None:
        report["spans"] = span_breakdown(tracer.spans())
        report["span_count"] = len(tracer)
    if events is not None:
        report["events"] = events.type_counts()
        report["event_count"] = len(events)
    classes: dict[str, dict[str, Any]] = {}
    if monitoring is not None:
        for cls in monitoring.observed_classes:
            obs = monitoring.for_class(cls)
            classes[cls] = {
                "completed": obs.completed,
                "failed": obs.failed,
                "throughput_rps": obs.throughput_rps,
                "error_rate": obs.error_rate,
                "latency_p99_ms": obs.latency_p99_ms(),
            }
    if runtimes is not None:
        for cls, runtime in runtimes.items():
            row = classes.setdefault(cls, {})
            dht = runtime.dht
            lookups = dht.mem_hits + dht.mem_misses
            row["dht_hit_rate"] = dht.mem_hits / lookups if lookups else 0.0
            row["dht_pending_writes"] = dht.pending_writes()
            read_path = dht.read_path_stats
            row["read_coalesced"] = read_path["read_coalesced"]
            row["near_hits"] = read_path["near_hits"]
            row["batched_reads"] = read_path["batched_reads"]
            row["cold_starts"] = sum(
                getattr(svc, "cold_starts", 0) for svc in runtime.services.values()
            )
            row["queue_depth"] = sum(
                svc.total_in_flight() for svc in runtime.services.values()
            )
    if classes:
        report["classes"] = classes
    return report


def format_summary(report: Mapping[str, Any]) -> str:
    """Render :func:`summary_report` output as readable text."""
    lines: list[str] = ["=== observability summary ==="]
    spans = report.get("spans") or {}
    if spans:
        lines.append(f"\nspan latency breakdown ({report.get('span_count', 0)} spans):")
        lines.append(f"  {'phase':<16} {'count':>8} {'mean_ms':>10} {'p95_ms':>10} {'max_ms':>10}")
        for name, stats in spans.items():
            lines.append(
                f"  {name:<16} {stats['count']:>8.0f} {stats['mean_ms']:>10.3f} "
                f"{stats['p95_ms']:>10.3f} {stats['max_ms']:>10.3f}"
            )
    elif "span_count" in report:
        lines.append("\nno finished spans recorded (is tracing enabled?)")
    event_counts = report.get("events") or {}
    if event_counts:
        lines.append(f"\ncontrol-plane events ({report.get('event_count', 0)} total):")
        for etype in sorted(event_counts):
            lines.append(f"  {etype:<22} {event_counts[etype]}")
    elif "event_count" in report:
        lines.append("\nno control-plane events recorded (is the event log enabled?)")
    qos = report.get("qos") or {}
    if qos:
        admission = qos.get("admission") or {}
        fair_queue = qos.get("fair_queue") or {}
        shedder = qos.get("shedder") or {}
        lines.append("\nqos enforcement plane:")
        for cls in sorted(admission):
            row = admission[cls]
            lines.append(
                f"  {cls:<16} admitted={row['admitted']} "
                f"rejected_rate={row['rejected_rate']} "
                f"rejected_concurrency={row['rejected_concurrency']}"
            )
        if fair_queue:
            lines.append(
                f"  fair queue: pushed={fair_queue.get('pushed', 0)} "
                f"served={fair_queue.get('served', 0)} "
                f"depth={fair_queue.get('depth', 0)}"
            )
        if shedder:
            shed_by_class = shedder.get("shed_by_class") or {}
            shed = " ".join(
                f"{cls}={count}" for cls, count in sorted(shed_by_class.items())
            )
            lines.append(
                f"  shedder: passes={shedder.get('passes', 0)} "
                f"shed={shedder.get('shed_total', 0)}"
                + (f" ({shed})" if shed else "")
            )
    durability = report.get("durability") or {}
    if durability:
        dur_classes = durability.get("classes") or {}
        lines.append("\ndurability plane:")
        lines.append(
            f"  cuts={durability.get('cuts_total', 0)} "
            f"epoch_writes={durability.get('epoch_writes_total', 0)} "
            f"recoveries={durability.get('recoveries_total', 0)} "
            f"restores={durability.get('restores_total', 0)}"
        )
        for cls in sorted(dur_classes):
            row = dur_classes[cls]
            policy = row.get("policy") or {}
            parts = [f"  {cls:<16} mode={policy.get('mode', '?')}"]
            if "cuts_taken" in row:
                parts.append(
                    f"cuts={row['cuts_taken']} generations={row['generation_count']} "
                    f"bytes={row['snapshot_bytes']}"
                )
            recovery = row.get("last_recovery")
            if recovery:
                parts.append(
                    f"rpo={recovery['rpo_s']:.4f}s rto={recovery['rto_s']:.4f}s "
                    f"lost={recovery['lost_writes']}"
                )
            lines.append(" ".join(parts))
    classes = report.get("classes") or {}
    if classes:
        lines.append("\nper-class data plane:")
        for cls in sorted(classes):
            row = classes[cls]
            parts = [f"  {cls}:"]
            if "completed" in row:
                parts.append(
                    f"ok={row['completed']} err={row['failed']} "
                    f"rps={row['throughput_rps']:.1f} p99={row['latency_p99_ms']:.1f}ms"
                )
            if "dht_hit_rate" in row:
                parts.append(
                    f"dht_hit={row['dht_hit_rate'] * 100:.0f}% "
                    f"wb_pending={row['dht_pending_writes']} "
                    f"cold_starts={row['cold_starts']} queue={row['queue_depth']}"
                )
            if row.get("read_coalesced") or row.get("near_hits") or row.get(
                "batched_reads"
            ):
                parts.append(
                    f"coalesced={row['read_coalesced']} "
                    f"near_hits={row['near_hits']} "
                    f"batched_reads={row['batched_reads']}"
                )
            lines.append(" ".join(parts))
    return "\n".join(lines)

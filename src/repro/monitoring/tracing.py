"""Invocation tracing.

Every external request carries a trace id (defaulting to its request
id); the invocation engine records spans for each phase of the data
plane — record load, task offload, state commit — and dataflow steps
propagate the parent's trace id, so one macro invocation yields a tree
of spans across objects and classes.

The tracer is disabled by default (zero overhead beyond a branch);
enable it per platform via ``PlatformConfig(tracing_enabled=True)`` or
``platform.tracer.enable()``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Span", "Tracer"]


@dataclass
class Span:
    """One timed operation within a trace."""

    trace_id: str
    span_id: int
    name: str
    start: float
    end: float | None = None
    parent_id: int | None = None
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        if self.end is None:
            return 0.0
        return self.end - self.start


class Tracer:
    """Collects spans into a bounded buffer."""

    def __init__(self, env, enabled: bool = False, capacity: int = 10_000) -> None:
        self.env = env
        self.enabled = enabled
        self._spans: deque[Span] = deque(maxlen=capacity)
        self._next_id = 0

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def start(
        self,
        trace_id: str,
        name: str,
        parent: "Span | int | None" = None,
        **attrs: Any,
    ) -> Span | None:
        """Open a span; returns ``None`` when tracing is off.

        ``parent`` may be a span or a raw span id (cross-request links).
        """
        if not self.enabled:
            return None
        self._next_id += 1
        parent_id = parent.span_id if isinstance(parent, Span) else parent
        span = Span(
            trace_id=trace_id,
            span_id=self._next_id,
            name=name,
            start=self.env.now,
            parent_id=parent_id,
            attrs=dict(attrs),
        )
        self._spans.append(span)
        return span

    def finish(self, span: Span | None, **attrs: Any) -> None:
        """Close a span (no-op for ``None``, so call sites stay clean)."""
        if span is None:
            return
        span.end = self.env.now
        span.attrs.update(attrs)

    # -- queries -----------------------------------------------------------

    def trace(self, trace_id: str) -> list[Span]:
        """All spans of one trace, in start order."""
        return sorted(
            (s for s in self._spans if s.trace_id == trace_id),
            key=lambda s: (s.start, s.span_id),
        )

    def spans_named(self, name: str) -> list[Span]:
        return [s for s in self._spans if s.name == name]

    def spans(self) -> list[Span]:
        """Every retained span, in recording order."""
        return list(self._spans)

    def trace_ids(self) -> list[str]:
        """Distinct trace ids, in first-seen order."""
        seen: dict[str, None] = {}
        for span in self._spans:
            seen.setdefault(span.trace_id, None)
        return list(seen)

    def __len__(self) -> int:
        return len(self._spans)

    def render(self, trace_id: str | None = None) -> str:
        """A human-readable tree of one trace (or every trace).

        Spans whose parent was evicted from the bounded buffer (or never
        recorded) render as roots rather than silently disappearing.
        """
        if trace_id is None:
            ids = self.trace_ids()
            if not ids:
                return "(no spans recorded)"
            return "\n".join(self.render(tid) for tid in ids)
        spans = self.trace(trace_id)
        if not spans:
            return f"(no spans for trace {trace_id})"
        present = {span.span_id for span in spans}
        children: dict[int | None, list[Span]] = {}
        for span in spans:
            parent = span.parent_id if span.parent_id in present else None
            children.setdefault(parent, []).append(span)
        lines: list[str] = [f"trace {trace_id}"]

        def walk(parent_id: int | None, depth: int) -> None:
            for span in children.get(parent_id, []):
                duration = f"{span.duration_s * 1000:.2f} ms" if span.end else "open"
                attrs = " ".join(f"{k}={v}" for k, v in span.attrs.items())
                lines.append(f"{'  ' * depth}- {span.name} [{duration}] {attrs}".rstrip())
                walk(span.span_id, depth + 1)

        walk(None, 1)
        return "\n".join(lines)

"""Metric primitives: counters, gauges, histograms, and a registry.

The requirement-driven optimizer (§III-B: "Oparaca connects the runtime
to the monitoring system and reacts to changes in workload or
performance") consumes these through sliding windows; benchmarks read
the same registry to report results.
"""

from __future__ import annotations

import math
import random
import zlib
from collections import deque
from dataclasses import dataclass

from repro.errors import ValidationError

__all__ = ["Counter", "Gauge", "Histogram", "SlidingWindow", "MetricsRegistry"]


class Counter:
    """A monotonically increasing count."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValidationError(f"counter {self.name!r} cannot decrease")
        self.value += amount


class Gauge:
    """A point-in-time value."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, delta: float) -> None:
        self.value += delta


class Histogram:
    """Bounded-memory value distribution.

    Exact while at most ``max_samples`` values have been recorded;
    beyond that a uniform reservoir (Vitter's algorithm R) keeps a
    fixed-size sample, so million-invocation runs hold memory constant.
    ``count``, ``mean``, and ``max`` stay exact regardless (running
    aggregates); ``percentile`` answers from the reservoir, which is the
    full data set until overflow and an unbiased sample after.
    """

    DEFAULT_MAX_SAMPLES = 8192

    def __init__(self, name: str, max_samples: int = DEFAULT_MAX_SAMPLES) -> None:
        if max_samples < 1:
            raise ValidationError(f"max_samples must be >= 1, got {max_samples}")
        self.name = name
        self.max_samples = max_samples
        self._values: list[float] = []
        self._sorted = True
        self._count = 0
        self._sum = 0.0
        self._max: float | None = None
        # Seeded per-name so runs stay reproducible (str hash is salted).
        self._rng = random.Random(zlib.crc32(name.encode("utf-8", "replace")))

    def record(self, value: float) -> None:
        value = float(value)
        self._count += 1
        self._sum += value
        if self._max is None or value > self._max:
            self._max = value
        if len(self._values) < self.max_samples:
            self._values.append(value)
            self._sorted = False
            return
        # Reservoir: the new value replaces a random resident with
        # probability max_samples / count, keeping the sample uniform.
        slot = self._rng.randrange(self._count)
        if slot < self.max_samples:
            self._values[slot] = value
            self._sorted = False

    @property
    def count(self) -> int:
        """Total values recorded (not the retained sample size)."""
        return self._count

    @property
    def overflowed(self) -> int:
        """Values recorded beyond the reservoir capacity."""
        return max(0, self._count - self.max_samples)

    @property
    def mean(self) -> float:
        if not self._count:
            return 0.0
        return self._sum / self._count

    def percentile(self, pct: float) -> float:
        """Value at percentile ``pct`` (0 < pct <= 100)."""
        if not 0 < pct <= 100:
            raise ValidationError(f"percentile must be in (0, 100], got {pct}")
        if not self._values:
            return 0.0
        if not self._sorted:
            self._values.sort()
            self._sorted = True
        rank = max(0, min(len(self._values) - 1, math.ceil(pct / 100 * len(self._values)) - 1))
        return self._values[rank]

    @property
    def max(self) -> float:
        return self._max if self._max is not None else 0.0


@dataclass(frozen=True)
class _WindowSample:
    at: float
    value: float
    ok: bool


class SlidingWindow:
    """Completions over the trailing ``window_s`` seconds.

    Feeds the optimizer's live view of a class: throughput, error rate,
    and latency percentiles, all evicting samples older than the window.
    """

    def __init__(self, window_s: float = 30.0) -> None:
        if window_s <= 0:
            raise ValidationError(f"window must be > 0, got {window_s}")
        self.window_s = window_s
        self._samples: deque[_WindowSample] = deque()

    def record(self, now: float, latency_s: float, ok: bool = True) -> None:
        self._samples.append(_WindowSample(now, latency_s, ok))
        self._evict(now)

    def _evict(self, now: float) -> None:
        cutoff = now - self.window_s
        while self._samples and self._samples[0].at < cutoff:
            self._samples.popleft()

    def throughput(self, now: float) -> float:
        """Completions/second over the trailing window."""
        self._evict(now)
        if not self._samples:
            return 0.0
        span = min(self.window_s, max(now - self._samples[0].at, 1e-9))
        return len(self._samples) / span

    def error_rate(self, now: float) -> float:
        self._evict(now)
        if not self._samples:
            return 0.0
        return sum(1 for s in self._samples if not s.ok) / len(self._samples)

    def latency_percentile(self, now: float, pct: float) -> float:
        self._evict(now)
        if not self._samples:
            return 0.0
        ordered = sorted(s.value for s in self._samples)
        rank = max(0, min(len(ordered) - 1, math.ceil(pct / 100 * len(ordered)) - 1))
        return ordered[rank]

    def __len__(self) -> int:
        return len(self._samples)


class MetricsRegistry:
    """Named metric instruments, created on first use."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        return self._counters.setdefault(name, Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._gauges.setdefault(name, Gauge(name))

    def histogram(self, name: str) -> Histogram:
        return self._histograms.setdefault(name, Histogram(name))

    def snapshot(self) -> dict[str, float]:
        """A flat view of counters and gauges (histograms as mean/p99)."""
        out: dict[str, float] = {}
        for name, counter in self._counters.items():
            out[name] = counter.value
        for name, gauge in self._gauges.items():
            out[name] = gauge.value
        for name, histogram in self._histograms.items():
            out[f"{name}.mean"] = histogram.mean
            out[f"{name}.p99"] = histogram.percentile(99) if histogram.count else 0.0
        return out

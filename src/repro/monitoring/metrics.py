"""Metric primitives: counters, gauges, histograms, and a registry.

The requirement-driven optimizer (§III-B: "Oparaca connects the runtime
to the monitoring system and reacts to changes in workload or
performance") consumes these through sliding windows; benchmarks read
the same registry to report results.

Instruments carry optional *labels* — `(name, labels)` identifies one
time series, Prometheus-style — so a single metric name (say
``qos.sheds``) fans out per class, node, or plane without inventing a
new dotted name per dimension.  The :class:`MetricsRegistry` keys
instruments by the full identity and the scraper/exposition layers
(:mod:`repro.monitoring.scraper`, :mod:`repro.monitoring.exposition`)
iterate it to build ring-buffered series and OpenMetrics text.
"""

from __future__ import annotations

import math
import random
import zlib
from collections import deque
from dataclasses import dataclass
from typing import Iterator, Mapping

from repro.errors import ValidationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "SlidingWindow",
    "MetricsRegistry",
    "label_key",
    "render_series_name",
]

#: Canonical form of a label set: sorted ``(key, value)`` string pairs.
LabelKey = tuple[tuple[str, str], ...]


def _checked_value(metric: str, value, *, what: str = "value") -> float:
    """A finite ``float`` recorded into a metric, or a clear error.

    The same discipline as ``repro.model.nfr._checked_number``: booleans,
    NaN, and infinities all slip past plain comparisons (``NaN < 0`` is
    False) and would silently poison every aggregate downstream — a
    counter incremented by NaN never recovers."""
    if isinstance(value, bool):
        raise ValidationError(f"{metric} {what} must be a number, got a boolean")
    if not isinstance(value, (int, float)):
        raise ValidationError(
            f"{metric} {what} must be a number, got {type(value).__name__} {value!r}"
        )
    result = float(value)
    if not math.isfinite(result):
        raise ValidationError(f"{metric} {what} must be finite, got {value!r}")
    return result


def label_key(labels: Mapping[str, str] | None) -> LabelKey:
    """The canonical, hashable identity of a label set.

    Keys and values are coerced to strings and sorted by key, so
    ``{"class": "Img", "node": "vm-1"}`` and the same mapping in any
    insertion order identify the same series."""
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def render_series_name(name: str, labels: LabelKey) -> str:
    """``name{k=v,...}`` — the flat-snapshot key of a labeled series."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count."""

    def __init__(self, name: str, labels: Mapping[str, str] | None = None) -> None:
        self.name = name
        self.labels: LabelKey = label_key(labels)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        amount = _checked_value(f"counter {self.name!r}", amount, what="increment")
        if amount < 0:
            raise ValidationError(f"counter {self.name!r} cannot decrease")
        self.value += amount


class Gauge:
    """A point-in-time value."""

    def __init__(self, name: str, labels: Mapping[str, str] | None = None) -> None:
        self.name = name
        self.labels: LabelKey = label_key(labels)
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = _checked_value(f"gauge {self.name!r}", value)

    def add(self, delta: float) -> None:
        self.value += _checked_value(f"gauge {self.name!r}", delta, what="delta")


class Histogram:
    """Bounded-memory value distribution.

    Exact while at most ``max_samples`` values have been recorded;
    beyond that a uniform reservoir (Vitter's algorithm R) keeps a
    fixed-size sample, so million-invocation runs hold memory constant.
    ``count``, ``mean``, and ``max`` stay exact regardless (running
    aggregates); ``percentile`` answers from the reservoir, which is the
    full data set until overflow and an unbiased sample after.
    """

    DEFAULT_MAX_SAMPLES = 8192

    def __init__(
        self,
        name: str,
        max_samples: int = DEFAULT_MAX_SAMPLES,
        labels: Mapping[str, str] | None = None,
    ) -> None:
        if max_samples < 1:
            raise ValidationError(f"max_samples must be >= 1, got {max_samples}")
        self.name = name
        self.labels: LabelKey = label_key(labels)
        self.max_samples = max_samples
        self._values: list[float] = []
        self._sorted = True
        self._count = 0
        self._sum = 0.0
        self._max: float | None = None
        # Seeded per-(name, labels) so replayed runs produce identical
        # percentile reports (str hash is salted; never use it).  An
        # unlabeled histogram keeps the historical name-only seed.
        seed_text = render_series_name(name, self.labels)
        self._rng = random.Random(zlib.crc32(seed_text.encode("utf-8", "replace")))

    def record(self, value: float) -> None:
        value = _checked_value(f"histogram {self.name!r}", value)
        self._count += 1
        self._sum += value
        if self._max is None or value > self._max:
            self._max = value
        if len(self._values) < self.max_samples:
            self._values.append(value)
            self._sorted = False
            return
        # Reservoir: the new value replaces a random resident with
        # probability max_samples / count, keeping the sample uniform.
        slot = self._rng.randrange(self._count)
        if slot < self.max_samples:
            self._values[slot] = value
            self._sorted = False

    @property
    def count(self) -> int:
        """Total values recorded (not the retained sample size)."""
        return self._count

    @property
    def overflowed(self) -> int:
        """Values recorded beyond the reservoir capacity."""
        return max(0, self._count - self.max_samples)

    @property
    def mean(self) -> float:
        if not self._count:
            return 0.0
        return self._sum / self._count

    @property
    def sum(self) -> float:
        """Exact running sum of every recorded value."""
        return self._sum

    def percentile(self, pct: float) -> float:
        """Value at percentile ``pct`` (0 < pct <= 100)."""
        if not 0 < pct <= 100:
            raise ValidationError(f"percentile must be in (0, 100], got {pct}")
        if not self._values:
            return 0.0
        if not self._sorted:
            self._values.sort()
            self._sorted = True
        rank = max(0, min(len(self._values) - 1, math.ceil(pct / 100 * len(self._values)) - 1))
        return self._values[rank]

    @property
    def max(self) -> float:
        return self._max if self._max is not None else 0.0


@dataclass(frozen=True)
class _WindowSample:
    at: float
    value: float
    ok: bool


class SlidingWindow:
    """Completions over the trailing ``window_s`` seconds.

    Feeds the optimizer's live view of a class: throughput, error rate,
    and latency percentiles, all evicting samples older than the window.

    Eviction semantics: a sample *exactly* at ``now - window_s`` is
    retained (the cutoff comparison is strict), and eviction assumes
    samples arrive in non-decreasing timestamp order — an out-of-order
    ``record`` with an old timestamp parks behind newer samples and
    survives until everything in front of it ages out.
    """

    def __init__(self, window_s: float = 30.0) -> None:
        if window_s <= 0:
            raise ValidationError(f"window must be > 0, got {window_s}")
        self.window_s = window_s
        self._samples: deque[_WindowSample] = deque()

    def record(self, now: float, latency_s: float, ok: bool = True) -> None:
        self._samples.append(_WindowSample(now, latency_s, ok))
        self._evict(now)

    def _evict(self, now: float) -> None:
        cutoff = now - self.window_s
        while self._samples and self._samples[0].at < cutoff:
            self._samples.popleft()

    def throughput(self, now: float) -> float:
        """Completions/second over the trailing window."""
        self._evict(now)
        if not self._samples:
            return 0.0
        span = min(self.window_s, max(now - self._samples[0].at, 1e-9))
        return len(self._samples) / span

    def error_rate(self, now: float) -> float:
        self._evict(now)
        if not self._samples:
            return 0.0
        return sum(1 for s in self._samples if not s.ok) / len(self._samples)

    def latency_percentile(self, now: float, pct: float) -> float:
        self._evict(now)
        if not self._samples:
            return 0.0
        ordered = sorted(s.value for s in self._samples)
        rank = max(0, min(len(ordered) - 1, math.ceil(pct / 100 * len(ordered)) - 1))
        return ordered[rank]

    def __len__(self) -> int:
        return len(self._samples)


class MetricsRegistry:
    """Metric instruments keyed by ``(name, labels)``, created on first use.

    ``registry.counter("qos.sheds")`` and
    ``registry.counter("qos.sheds", {"class": "Img"})`` are distinct
    series under one name; the exposition layer groups them.
    """

    def __init__(self) -> None:
        self._counters: dict[tuple[str, LabelKey], Counter] = {}
        self._gauges: dict[tuple[str, LabelKey], Gauge] = {}
        self._histograms: dict[tuple[str, LabelKey], Histogram] = {}

    def counter(self, name: str, labels: Mapping[str, str] | None = None) -> Counter:
        key = (name, label_key(labels))
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter(name, labels)
        return instrument

    def gauge(self, name: str, labels: Mapping[str, str] | None = None) -> Gauge:
        key = (name, label_key(labels))
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge(name, labels)
        return instrument

    def histogram(self, name: str, labels: Mapping[str, str] | None = None) -> Histogram:
        key = (name, label_key(labels))
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram(name, labels=labels)
        return instrument

    # -- iteration (scraper / exposition) ---------------------------------

    def counters(self) -> Iterator[Counter]:
        return iter(self._counters.values())

    def gauges(self) -> Iterator[Gauge]:
        return iter(self._gauges.values())

    def histograms(self) -> Iterator[Histogram]:
        return iter(self._histograms.values())

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    def snapshot(self) -> dict[str, float]:
        """A flat view of counters and gauges (histograms as mean/p99).

        Unlabeled instruments keep their bare name (the historical
        format); labeled series render as ``name{k=v,...}``.
        """
        out: dict[str, float] = {}
        for counter in self._counters.values():
            out[render_series_name(counter.name, counter.labels)] = counter.value
        for gauge in self._gauges.values():
            out[render_series_name(gauge.name, gauge.labels)] = gauge.value
        for histogram in self._histograms.values():
            base = render_series_name(histogram.name, histogram.labels)
            out[f"{base}.mean"] = histogram.mean
            out[f"{base}.p99"] = histogram.percentile(99) if histogram.count else 0.0
        return out

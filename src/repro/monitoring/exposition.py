"""Prometheus/OpenMetrics text exposition and JSON snapshot export.

The registry's dotted metric names (``qos.queue_delay_s``) are
sanitized into the exposition grammar (``qos_queue_delay_s``); label
values are escaped per the OpenMetrics spec (backslash, double-quote,
newline).  Two *distinct* registry names can collide after
sanitization (``a.b`` and ``a_b``); the renderer keeps every sample and
emits the ``# TYPE`` header once per exposition name, first kind wins —
collisions are an authoring smell, not data loss.

Histograms are exposed as Prometheus *summaries*: ``_count``, ``_sum``,
and one ``{quantile="..."}`` sample per sampled percentile.
"""

from __future__ import annotations

import json
import re
from typing import TYPE_CHECKING, Any

from repro.monitoring.metrics import LabelKey, MetricsRegistry, render_series_name

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.monitoring.scraper import MetricsScraper

__all__ = [
    "sanitize_metric_name",
    "escape_label_value",
    "render_labels",
    "render_openmetrics",
    "metrics_json",
]

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")
_QUANTILES = (50, 95, 99)


def sanitize_metric_name(name: str) -> str:
    """Map a registry name onto the exposition grammar.

    Invalid characters (dots, dashes, spaces, braces...) become ``_``;
    a leading digit gets a ``_`` prefix.  Lossy by design — see the
    module docstring on collisions.
    """
    cleaned = _NAME_OK.sub("_", name)
    if cleaned and cleaned[0].isdigit():
        cleaned = f"_{cleaned}"
    return cleaned or "_"


def escape_label_value(value: str) -> str:
    """Escape a label value per the OpenMetrics text format."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def render_labels(labels: LabelKey, extra: tuple[tuple[str, str], ...] = ()) -> str:
    """``{k="v",...}`` or the empty string for an unlabeled series."""
    pairs = tuple(labels) + tuple(extra)
    if not pairs:
        return ""
    inner = ",".join(
        f'{sanitize_metric_name(k)}="{escape_label_value(str(v))}"' for k, v in pairs
    )
    return f"{{{inner}}}"


def _format_value(value: float) -> str:
    # Integral floats print without the trailing ".0" noise; everything
    # else keeps repr precision so replays diff cleanly.
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def render_openmetrics(registry: MetricsRegistry, now: float | None = None) -> str:
    """The registry's current state in the OpenMetrics text format."""
    lines: list[str] = []
    if now is not None:
        lines.append(f"# Scraped at simulated t={now:.6f}s")
    typed: set[str] = set()

    def type_line(exposition_name: str, kind: str) -> None:
        if exposition_name not in typed:
            typed.add(exposition_name)
            lines.append(f"# TYPE {exposition_name} {kind}")

    for counter in sorted(registry.counters(), key=lambda c: (c.name, c.labels)):
        exposition = sanitize_metric_name(counter.name)
        type_line(exposition, "counter")
        lines.append(
            f"{exposition}{render_labels(counter.labels)} "
            f"{_format_value(counter.value)}"
        )
    for gauge in sorted(registry.gauges(), key=lambda g: (g.name, g.labels)):
        exposition = sanitize_metric_name(gauge.name)
        type_line(exposition, "gauge")
        lines.append(
            f"{exposition}{render_labels(gauge.labels)} {_format_value(gauge.value)}"
        )
    for histogram in sorted(registry.histograms(), key=lambda h: (h.name, h.labels)):
        exposition = sanitize_metric_name(histogram.name)
        type_line(exposition, "summary")
        labels = render_labels(histogram.labels)
        lines.append(f"{exposition}_count{labels} {histogram.count}")
        lines.append(f"{exposition}_sum{labels} {_format_value(histogram.sum)}")
        for pct in _QUANTILES:
            value = histogram.percentile(pct) if histogram.count else 0.0
            quantile = (("quantile", f"0.{pct}"),)
            lines.append(
                f"{exposition}{render_labels(histogram.labels, quantile)} "
                f"{_format_value(value)}"
            )
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def metrics_json(
    registry: MetricsRegistry,
    scraper: "MetricsScraper | None" = None,
    indent: int | None = None,
) -> str:
    """A JSON snapshot: instruments now, plus sampled series history."""
    doc: dict[str, Any] = {
        "instruments": {
            "counters": [
                {
                    "name": c.name,
                    "labels": dict(c.labels),
                    "value": c.value,
                }
                for c in sorted(registry.counters(), key=lambda c: (c.name, c.labels))
            ],
            "gauges": [
                {
                    "name": g.name,
                    "labels": dict(g.labels),
                    "value": g.value,
                }
                for g in sorted(registry.gauges(), key=lambda g: (g.name, g.labels))
            ],
            "histograms": [
                {
                    "name": h.name,
                    "labels": dict(h.labels),
                    "count": h.count,
                    "sum": h.sum,
                    "mean": h.mean,
                    "max": h.max,
                    "p50": h.percentile(50) if h.count else 0.0,
                    "p95": h.percentile(95) if h.count else 0.0,
                    "p99": h.percentile(99) if h.count else 0.0,
                }
                for h in sorted(registry.histograms(), key=lambda h: (h.name, h.labels))
            ],
        },
    }
    if scraper is not None:
        doc["scrape"] = {
            "interval_s": scraper.interval_s,
            "scrapes": scraper.scrapes,
            "series": [
                {
                    "name": series.name,
                    "labels": dict(series.labels),
                    "kind": series.kind,
                    "series_id": render_series_name(series.name, series.labels),
                    "points": [[at, value] for at, value in series.points()],
                }
                for series in scraper.all_series()
            ],
        }
    return json.dumps(doc, indent=indent, default=str)

"""The metrics plane facade: labeled registry + scraper + SLO evaluator.

One object owns the whole observability pipeline the way the QoS and
durability planes own theirs: the platform constructs a
:class:`MetricsPlane` only when ``PlatformConfig().metrics.enabled`` is
True, so a baseline platform never builds a scraper, never registers a
collector, and executes byte-identically with this module unimported.

The plane is **pull-model**: nothing is added to data-plane hot paths.
Every scrape runs the registered collectors — each plane contributes a
``collect_metrics(registry)`` hook that refreshes labeled instruments
from the statistics it already keeps — then samples the registry into
ring-buffered time series and hands the clock to the SLO evaluator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping

from repro.errors import ValidationError
from repro.monitoring.collector import MonitoringSystem
from repro.monitoring.events import EventLog
from repro.monitoring.exposition import metrics_json, render_openmetrics
from repro.monitoring.metrics import MetricsRegistry
from repro.monitoring.scraper import MetricsScraper
from repro.monitoring.slo import SloConfig, SloEvaluator
from repro.sim.kernel import Environment

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.platform.oparaca import Oparaca

__all__ = ["MetricsConfig", "MetricsPlane", "set_counter"]


@dataclass(frozen=True)
class MetricsConfig:
    """Construction-time knobs of the metrics plane.

    Attributes:
        enabled: master switch; when False the platform never builds a
            plane and no collector, scraper, or SLO evaluator exists.
        scrape_interval_s: simulated seconds between scrapes.
        retention_points: ring-buffer capacity per time series.
        slo_enabled: build the SLO evaluator on top of the scraper.
        slo: burn-rate evaluation tuning.
        kernel_profiling: enable per-event-type dispatch profiling on
            the simulation kernel and export it as metrics.
    """

    enabled: bool = False
    scrape_interval_s: float = 0.5
    retention_points: int = 720
    slo_enabled: bool = True
    slo: SloConfig = field(default_factory=SloConfig)
    kernel_profiling: bool = True

    def __post_init__(self) -> None:
        if self.scrape_interval_s <= 0:
            raise ValidationError(
                f"scrape_interval_s must be > 0, got {self.scrape_interval_s}"
            )
        if self.retention_points < 2:
            raise ValidationError(
                f"retention_points must be >= 2, got {self.retention_points}"
            )


def set_counter(
    registry: MetricsRegistry,
    name: str,
    value: float,
    labels: Mapping[str, str] | None = None,
) -> None:
    """Pull-model counter update: raise the instrument to ``value``.

    Collectors read cumulative statistics off components and mirror
    them into registry counters; the counter moves by the positive
    delta (a stale or equal value is a no-op, keeping monotonicity).
    """
    counter = registry.counter(name, labels)
    delta = value - counter.value
    if delta > 0:
        counter.inc(delta)


class MetricsPlane:
    """Owns scraping, exposition, and SLO evaluation for one platform."""

    def __init__(
        self,
        env: Environment,
        monitoring: MonitoringSystem,
        events: EventLog | None = None,
        config: MetricsConfig | None = None,
    ) -> None:
        self.env = env
        self.monitoring = monitoring
        self.events = events
        self.config = config or MetricsConfig(enabled=True)
        self.registry: MetricsRegistry = monitoring.registry
        self.scraper = MetricsScraper(
            env,
            self.registry,
            interval_s=self.config.scrape_interval_s,
            capacity=self.config.retention_points,
        )
        self.slo: SloEvaluator | None = None
        if self.config.slo_enabled:
            self.slo = SloEvaluator(env, monitoring, events=events, config=self.config.slo)
            self.scraper.on_scrape.append(self.slo.evaluate)
        self._platform: "Oparaca | None" = None

    # -- wiring ------------------------------------------------------------

    def install(self, platform: "Oparaca") -> None:
        """Attach collectors over every plane the platform runs."""
        self._platform = platform
        if self.config.kernel_profiling:
            platform.env.enable_profiling()
        self.scraper.collectors.append(self._collect)
        if self.slo is not None:
            self.slo.watch_durability(platform.durability)

    def start(self) -> None:
        self.scraper.start()

    def stop(self) -> None:
        self.scraper.stop()

    # -- collection --------------------------------------------------------

    def _collect(self) -> None:
        platform = self._platform
        if platform is None:
            return
        registry = self.registry
        self._collect_front_door(platform, registry)
        self._collect_runtimes(platform, registry)
        platform.queue.collect_metrics(registry)
        if platform.qos is not None:
            platform.qos.collect_metrics(registry)
        if platform.durability is not None:
            platform.durability.collect_metrics(registry)
        if platform.scheduler_plane is not None:
            platform.scheduler_plane.collect_metrics(registry)
        if platform.federation is not None:
            platform.federation.collect_metrics(registry)
        if platform.chaos is not None:
            platform.chaos.collect_metrics(registry)
        profile = platform.env.profile
        if profile is not None:
            profile.collect_metrics(registry)
        if self.slo is not None:
            self._watch_new_classes(platform)

    def _collect_front_door(self, platform: "Oparaca", registry: MetricsRegistry) -> None:
        """Gateway, invocation engine, and document store counters."""
        gateway = platform.gateway
        set_counter(registry, "gateway.requests", float(gateway.requests), {"plane": "gateway"})
        set_counter(registry, "gateway.rejected", float(gateway.rejected), {"plane": "gateway"})
        engine = platform.engine
        engine_counters = {
            "invoker.invocations": engine.invocations,
            "invoker.cas_conflicts": engine.cas_conflicts,
            "invoker.fault_retries": engine.fault_retries,
            "invoker.timeouts": engine.timeouts,
            "invoker.stale_reads": engine.stale_reads,
        }
        for name, value in engine_counters.items():
            set_counter(registry, name, float(value), {"plane": "invoker"})
        registry.gauge("invoker.open_breakers", {"plane": "invoker"}).set(
            float(engine.breakers.open_count())
        )
        store = platform.store
        set_counter(registry, "db.write_ops", float(store.write_ops), {"plane": "storage"})
        set_counter(registry, "db.docs_written", float(store.docs_written), {"plane": "storage"})
        query_labels = {"plane": "storage", "backend": store.backend.name}
        set_counter(registry, "db.query_ops", float(store.query_ops), query_labels)
        set_counter(
            registry,
            "db.query_docs_scanned",
            float(store.query_docs_scanned),
            query_labels,
        )
        registry.gauge("db.backlog_s", {"plane": "storage"}).set(store.backlog_seconds)

    def _collect_runtimes(self, platform: "Oparaca", registry: MetricsRegistry) -> None:
        """Per-class data-plane health: DHT read path, write-behind,
        FaaS cold starts and in-flight depth — labeled by class."""
        for cls, runtime in platform.crm.runtimes.items():
            labels = {"class": cls, "plane": "storage"}
            runtime.dht.collect_metrics(registry, labels)
            cold = sum(
                getattr(svc, "cold_starts", 0) for svc in runtime.services.values()
            )
            in_flight = sum(
                svc.total_in_flight() for svc in runtime.services.values()
            )
            replicas = sum(svc.replicas for svc in runtime.services.values())
            faas_labels = {"class": cls, "plane": "faas"}
            set_counter(registry, "faas.cold_starts", float(cold), faas_labels)
            registry.gauge("faas.in_flight", faas_labels).set(float(in_flight))
            registry.gauge("faas.replicas", faas_labels).set(float(replicas))
            obs = platform.monitoring.for_class(cls)
            cls_labels = {"class": cls, "plane": "invoker"}
            set_counter(registry, "class.completed", float(obs.completed), cls_labels)
            set_counter(registry, "class.failed", float(obs.failed), cls_labels)
            registry.gauge("class.throughput_rps", cls_labels).set(obs.throughput_rps)

    def _watch_new_classes(self, platform: "Oparaca") -> None:
        from repro.monitoring.nfr_report import _saturated

        for cls, runtime in platform.crm.runtimes.items():
            self.slo.watch_class(
                cls,
                runtime.resolved.nfr,
                saturated=lambda r=runtime: _saturated(r),
            )

    # -- reporting ---------------------------------------------------------

    def exposition(self) -> str:
        """The registry's current state as OpenMetrics text."""
        return render_openmetrics(self.registry, now=self.env.now)

    def json_report(self, indent: int | None = None) -> str:
        """Instruments + sampled series history as JSON."""
        return metrics_json(self.registry, scraper=self.scraper, indent=indent)

    def slo_report(self) -> dict[str, Any]:
        """The ``slo`` section (empty when the evaluator is off)."""
        return self.slo.report() if self.slo is not None else {}

    def stats(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "scrapes": self.scraper.scrapes,
            "scrape_interval_s": self.scraper.interval_s,
            "series": len(self.scraper),
            "instruments": len(self.registry),
        }
        if self.slo is not None:
            out["slo_evaluations"] = self.slo.evaluations
            out["slo_alerts"] = len(self.slo.alerts)
            out["slo_firing"] = len(self.slo.firing())
        return out

"""Deterministic sim-time metrics scraping into ring-buffered series.

A Prometheus server scrapes registries on a fixed wall-clock interval;
here the :class:`MetricsScraper` is a simulation *process* that wakes
every ``interval_s`` simulated seconds, runs its registered collectors
(pull-model hooks each plane contributes to refresh gauges from its own
stats), samples every instrument in the registry into a bounded
:class:`TimeSeries`, and finally invokes its ``on_scrape`` listeners —
which is how the :class:`~repro.monitoring.slo.SloEvaluator` gets its
clock.  Because scrapes happen in simulated time, a seeded run replays
to an identical set of series, point for point.

Histograms fan out into multiple series per scrape: cumulative
``:count`` and ``:sum`` plus ``:p50``/``:p95``/``:p99`` quantile
gauges, so a latency trajectory survives even though the underlying
reservoir is bounded.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterator, Mapping

from repro.errors import ValidationError
from repro.monitoring.metrics import (
    LabelKey,
    MetricsRegistry,
    label_key,
    render_series_name,
)
from repro.sim.kernel import Environment

__all__ = ["TimeSeries", "MetricsScraper"]

#: Histogram quantiles sampled into their own gauge series each scrape.
HISTOGRAM_QUANTILES = (50, 95, 99)


class TimeSeries:
    """One metric's sampled history: a bounded ring of ``(at, value)``."""

    __slots__ = ("name", "labels", "kind", "_points")

    def __init__(self, name: str, labels: LabelKey, kind: str, capacity: int) -> None:
        self.name = name
        self.labels = labels
        self.kind = kind  # "counter" | "gauge"
        self._points: deque[tuple[float, float]] = deque(maxlen=capacity)

    def append(self, at: float, value: float) -> None:
        self._points.append((at, value))

    def points(self) -> list[tuple[float, float]]:
        return list(self._points)

    @property
    def latest(self) -> float:
        return self._points[-1][1] if self._points else 0.0

    def rate(self, window_s: float, now: float) -> float:
        """Per-second increase over the trailing ``window_s`` seconds.

        Meaningful for ``counter`` series; for a gauge it is the slope.
        Returns 0 with fewer than two retained points in the window.
        """
        if window_s <= 0:
            raise ValidationError(f"rate window must be > 0, got {window_s}")
        cutoff = now - window_s
        first = last = None
        for at, value in self._points:
            if at < cutoff:
                continue
            if first is None:
                first = (at, value)
            last = (at, value)
        if first is None or last is None or last[0] <= first[0]:
            return 0.0
        return (last[1] - first[1]) / (last[0] - first[0])

    def __len__(self) -> int:
        return len(self._points)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<TimeSeries {render_series_name(self.name, self.labels)} "
            f"kind={self.kind} points={len(self._points)}>"
        )


class MetricsScraper:
    """Samples a :class:`MetricsRegistry` on a fixed simulated interval."""

    def __init__(
        self,
        env: Environment,
        registry: MetricsRegistry,
        interval_s: float = 0.5,
        capacity: int = 720,
    ) -> None:
        if interval_s <= 0:
            raise ValidationError(f"scrape interval must be > 0, got {interval_s}")
        if capacity < 2:
            raise ValidationError(f"series capacity must be >= 2, got {capacity}")
        self.env = env
        self.registry = registry
        self.interval_s = interval_s
        self.capacity = capacity
        #: Pull hooks run before sampling; each plane registers one to
        #: refresh its gauges/counters from its own statistics.
        self.collectors: list[Callable[[], None]] = []
        #: Listeners run after sampling with the scrape timestamp (the
        #: SLO evaluator's clock).
        self.on_scrape: list[Callable[[float], None]] = []
        self.scrapes = 0
        self._series: dict[tuple[str, LabelKey], TimeSeries] = {}
        self._running = False
        self._proc = None

    # -- lifecycle --------------------------------------------------------

    def start(self) -> None:
        """Launch the periodic scrape loop as a simulation process."""
        if self._running:
            return
        self._running = True
        self._proc = self.env.process(self._run())

    def stop(self) -> None:
        self._running = False

    def _run(self):
        while self._running:
            yield self.env.timeout(self.interval_s)
            if not self._running:
                return
            self.scrape_once()

    # -- scraping ---------------------------------------------------------

    def scrape_once(self) -> float:
        """Collect, sample every instrument, notify listeners.

        Returns the scrape timestamp.  Callable directly (tests, CLI
        final flush) as well as from the periodic loop.
        """
        now = self.env.now
        for collector in self.collectors:
            collector()
        for counter in self.registry.counters():
            self._sample(counter.name, counter.labels, "counter", now, counter.value)
        for gauge in self.registry.gauges():
            self._sample(gauge.name, gauge.labels, "gauge", now, gauge.value)
        for histogram in self.registry.histograms():
            self._sample(
                f"{histogram.name}:count", histogram.labels, "counter", now,
                float(histogram.count),
            )
            self._sample(
                f"{histogram.name}:sum", histogram.labels, "counter", now,
                histogram.sum,
            )
            if histogram.count:
                for pct in HISTOGRAM_QUANTILES:
                    self._sample(
                        f"{histogram.name}:p{pct}", histogram.labels, "gauge", now,
                        histogram.percentile(pct),
                    )
        self.scrapes += 1
        for listener in self.on_scrape:
            listener(now)
        return now

    def _sample(
        self, name: str, labels: LabelKey, kind: str, at: float, value: float
    ) -> None:
        key = (name, labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = TimeSeries(name, labels, kind, self.capacity)
        series.append(at, value)

    # -- queries ----------------------------------------------------------

    def series(
        self, name: str, labels: Mapping[str, str] | None = None
    ) -> TimeSeries | None:
        return self._series.get((name, label_key(labels)))

    def all_series(self) -> Iterator[TimeSeries]:
        """Every sampled series, sorted by (name, labels) for stable output."""
        for key in sorted(self._series):
            yield self._series[key]

    def __len__(self) -> int:
        return len(self._series)

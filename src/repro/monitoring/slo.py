"""SLO evaluation: declared NFRs compiled into burn-rate alerts.

The NFR report (:mod:`repro.monitoring.nfr_report`) judges *point in
time* compliance; this module watches compliance *over time*, the way
an SRE would run it: each declared requirement becomes a service-level
objective with an error budget, and the evaluator computes **multi-
window burn rates** — how fast the budget is being consumed over a long
and a short trailing window.  An alert fires only when *both* windows
burn above the pair's threshold (the long window proves the problem is
real, the short window proves it is still happening), which is the
standard construction that pages quickly on cliffs without flapping on
blips.

Objectives compiled per class:

* ``availability`` — bad event = failed invocation; budget =
  ``1 - declared availability``.
* ``latency_p95`` — bad event = invocation slower than the declared
  ``latency_ms``; budget = ``1 - latency_objective`` (default 5%: a
  p95-style objective over the declared bound).
* ``throughput`` — deficit alert: windowed observed throughput below
  the declared capacity while the class's services are saturated.
* ``durability_rpo`` — point alert: a measured crash recovery lost more
  acknowledged seconds than the policy's RPO budget.

Alerts are emitted as typed control-plane events (``slo.alert`` /
``slo.resolve``) and retained in :attr:`SloEvaluator.alerts`; the
``slo`` report section summarizes objectives, budget consumption, and
the alert history.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import ValidationError
from repro.monitoring.collector import MonitoringSystem
from repro.monitoring.events import EventLog
from repro.sim.kernel import Environment

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.durability.plane import DurabilityPlane
    from repro.model.nfr import NonFunctionalRequirements

__all__ = ["BurnWindow", "SloConfig", "SloAlert", "SloEvaluator"]


@dataclass(frozen=True)
class BurnWindow:
    """One multi-window burn-rate rule (long + short window, threshold)."""

    long_s: float
    short_s: float
    burn_rate: float
    severity: str  # "page" | "ticket"

    def __post_init__(self) -> None:
        if self.long_s <= 0 or self.short_s <= 0:
            raise ValidationError(
                f"burn windows must be > 0, got long={self.long_s} short={self.short_s}"
            )
        if self.short_s >= self.long_s:
            raise ValidationError(
                f"short window must be shorter than long "
                f"({self.short_s} >= {self.long_s})"
            )
        if self.burn_rate <= 1:
            raise ValidationError(
                f"burn-rate threshold must be > 1, got {self.burn_rate}"
            )


#: Default page/ticket pairs, scaled to simulated seconds (a platform
#: run lasts seconds, not the SRE handbook's hours).
DEFAULT_WINDOWS = (
    BurnWindow(long_s=30.0, short_s=5.0, burn_rate=10.0, severity="page"),
    BurnWindow(long_s=120.0, short_s=15.0, burn_rate=3.0, severity="ticket"),
)


@dataclass(frozen=True)
class SloConfig:
    """Evaluator tuning.

    Attributes:
        windows: the multi-window burn-rate rules, strictest first.
        latency_objective: fraction of requests that must meet the
            declared latency bound (0.95 = a p95 objective).
        min_requests: fewer requests than this inside the long window
            yields burn rate 0 (no alerting on statistical noise).
        throughput_tolerance: deficit fraction tolerated before a
            saturated class's throughput alert fires (0.1 = observed
            may run 10% under the declared capacity).
    """

    windows: tuple[BurnWindow, ...] = DEFAULT_WINDOWS
    latency_objective: float = 0.95
    min_requests: int = 5
    throughput_tolerance: float = 0.1

    def __post_init__(self) -> None:
        if not self.windows:
            raise ValidationError("SloConfig requires at least one burn window")
        if not 0 < self.latency_objective < 1:
            raise ValidationError(
                f"latency_objective must be in (0, 1), got {self.latency_objective}"
            )
        if self.min_requests < 1:
            raise ValidationError(
                f"min_requests must be >= 1, got {self.min_requests}"
            )
        if not 0 <= self.throughput_tolerance < 1:
            raise ValidationError(
                f"throughput_tolerance must be in [0, 1), got "
                f"{self.throughput_tolerance}"
            )


@dataclass
class SloAlert:
    """One burn-rate (or point) alert occurrence."""

    cls: str
    slo: str
    severity: str
    fired_at: float
    burn_long: float
    burn_short: float
    window: BurnWindow | None = None
    resolved_at: float | None = None
    detail: str = ""

    @property
    def firing(self) -> bool:
        return self.resolved_at is None

    def to_dict(self) -> dict[str, Any]:
        return {
            "cls": self.cls,
            "slo": self.slo,
            "severity": self.severity,
            "fired_at": self.fired_at,
            "resolved_at": self.resolved_at,
            "burn_long": self.burn_long,
            "burn_short": self.burn_short,
            "window_long_s": self.window.long_s if self.window else None,
            "window_short_s": self.window.short_s if self.window else None,
            "detail": self.detail,
        }


class _BudgetSeries:
    """Cumulative (total, bad) samples supporting windowed burn rates."""

    __slots__ = ("_points",)

    def __init__(self, capacity: int = 4096) -> None:
        self._points: deque[tuple[float, int, int]] = deque(maxlen=capacity)

    def append(self, at: float, total: int, bad: int) -> None:
        self._points.append((at, total, bad))

    def window_counts(self, now: float, window_s: float) -> tuple[int, int]:
        """(total, bad) deltas over the trailing window.

        The window is clipped to retained history, so early in a run a
        30-second rule evaluates over whatever has been sampled so far.
        """
        if not self._points:
            return 0, 0
        cutoff = now - window_s
        base_total = base_bad = 0
        for at, total, bad in self._points:
            if at > cutoff:
                break
            base_total, base_bad = total, bad
        _, last_total, last_bad = self._points[-1]
        return last_total - base_total, last_bad - base_bad


class _Objective:
    """One watched SLO of one class."""

    def __init__(
        self,
        cls: str,
        slo: str,
        target: float,
        budget: float,
        sample: Callable[[], tuple[int, int]],
        detail: str = "",
    ) -> None:
        self.cls = cls
        self.slo = slo  # "availability" | "latency_p95" | "throughput"
        self.target = target
        self.budget = budget
        self.sample = sample  # () -> cumulative (total, bad)
        self.detail = detail
        self.series = _BudgetSeries()

    def describe(self, now: float, windows: tuple[BurnWindow, ...]) -> dict[str, Any]:
        total, bad = self.series.window_counts(now, float("inf"))
        budget_events = total * self.budget
        out: dict[str, Any] = {
            "cls": self.cls,
            "slo": self.slo,
            "target": self.target,
            "budget": self.budget,
            "total": total,
            "bad": bad,
            "budget_consumed": (bad / budget_events) if budget_events else 0.0,
            "detail": self.detail,
        }
        for window in windows:
            w_total, w_bad = self.series.window_counts(now, window.long_s)
            fraction = (w_bad / w_total) if w_total else 0.0
            out[f"burn_{int(window.long_s)}s"] = (
                fraction / self.budget if self.budget else 0.0
            )
        return out


class SloEvaluator:
    """Watches declared NFRs as SLOs and fires burn-rate alerts."""

    def __init__(
        self,
        env: Environment,
        monitoring: MonitoringSystem,
        events: EventLog | None = None,
        config: SloConfig | None = None,
    ) -> None:
        self.env = env
        self.monitoring = monitoring
        self.events = events
        self.config = config or SloConfig()
        self.alerts: list[SloAlert] = []
        self.evaluations = 0
        self._objectives: list[_Objective] = []
        self._watched: set[str] = set()
        #: (cls, slo, severity) -> the currently firing alert.
        self._firing: dict[tuple[str, str, str], SloAlert] = {}
        #: Throughput deficit state per class: (target, saturated_fn).
        self._throughput: dict[str, tuple[float, Callable[[], bool]]] = {}
        self._throughput_series: dict[str, _BudgetSeries] = {}
        #: Durability recovery counts already judged, per class.
        self._rpo_seen: dict[str, int] = {}
        self._durability: "DurabilityPlane | None" = None

    # -- registration ------------------------------------------------------

    def watch_class(
        self,
        cls: str,
        nfr: "NonFunctionalRequirements",
        saturated: Callable[[], bool] | None = None,
    ) -> None:
        """Compile one class's declared NFRs into objectives.

        Idempotent per class; classes with no declared QoS add nothing.
        """
        if cls in self._watched:
            return
        self._watched.add(cls)
        qos = nfr.qos
        obs = self.monitoring.for_class(cls)
        if qos.availability is not None:
            budget = 1.0 - qos.availability
            if budget > 0:
                self._objectives.append(
                    _Objective(
                        cls,
                        "availability",
                        qos.availability,
                        budget,
                        lambda o=obs: (o.completed + o.failed, o.failed),
                        detail="bad = failed invocation",
                    )
                )
        if qos.latency_ms is not None:
            obs.set_latency_slo(qos.latency_ms / 1000.0)
            self._objectives.append(
                _Objective(
                    cls,
                    "latency_p95",
                    qos.latency_ms,
                    1.0 - self.config.latency_objective,
                    lambda o=obs: (o.completed + o.failed, o.slow),
                    detail=(
                        f"bad = latency > {qos.latency_ms:g}ms "
                        f"(objective p{self.config.latency_objective * 100:g})"
                    ),
                )
            )
        if qos.throughput_rps is not None:
            self._throughput[cls] = (
                qos.throughput_rps,
                saturated if saturated is not None else (lambda: False),
            )
            self._throughput_series[cls] = _BudgetSeries()

    def watch_durability(self, durability: "DurabilityPlane | None") -> None:
        """Judge measured crash recoveries against per-class RPO budgets."""
        self._durability = durability

    @property
    def watched_classes(self) -> tuple[str, ...]:
        return tuple(sorted(self._watched))

    # -- evaluation --------------------------------------------------------

    def evaluate(self, now: float | None = None) -> None:
        """One evaluation pass — the scraper calls this after sampling."""
        at = self.env.now if now is None else now
        self.evaluations += 1
        for objective in self._objectives:
            total, bad = objective.sample()
            objective.series.append(at, total, bad)
            self._judge_burn(objective, at)
        for cls, (target, saturated) in self._throughput.items():
            self._judge_throughput(cls, target, saturated, at)
        if self._durability is not None:
            self._judge_rpo(at)

    def _judge_burn(self, objective: _Objective, at: float) -> None:
        for window in self.config.windows:
            long_total, long_bad = objective.series.window_counts(at, window.long_s)
            short_total, short_bad = objective.series.window_counts(at, window.short_s)
            if long_total < self.config.min_requests:
                burn_long = burn_short = 0.0
            else:
                burn_long = (long_bad / long_total) / objective.budget
                burn_short = (
                    (short_bad / short_total) / objective.budget if short_total else 0.0
                )
            key = (objective.cls, objective.slo, window.severity)
            should_fire = burn_long >= window.burn_rate and burn_short >= window.burn_rate
            self._transition(
                key,
                should_fire,
                at,
                burn_long,
                burn_short,
                window,
                detail=objective.detail,
            )

    def _judge_throughput(
        self, cls: str, target: float, saturated: Callable[[], bool], at: float
    ) -> None:
        obs = self.monitoring.for_class(cls)
        observed = obs.throughput_rps
        series = self._throughput_series[cls]
        # Track scrape ticks where the class ran saturated *and* under
        # target; burn semantics: bad tick / total tick vs a 10% budget.
        is_sat = bool(saturated())
        deficit = observed < target * (1.0 - self.config.throughput_tolerance)
        last_total, last_bad = series.window_counts(at, float("inf"))
        series.append(at, last_total + 1, last_bad + (1 if (is_sat and deficit) else 0))
        window = self.config.windows[0]
        long_total, long_bad = series.window_counts(at, window.long_s)
        short_total, short_bad = series.window_counts(at, window.short_s)
        # A capacity SLO pages when most recent ticks are deficient.
        burn_long = (long_bad / long_total) if long_total else 0.0
        burn_short = (short_bad / short_total) if short_total else 0.0
        should_fire = (
            long_total >= 3 and burn_long >= 0.5 and burn_short >= 0.5
        )
        self._transition(
            (cls, "throughput", "ticket"),
            should_fire,
            at,
            burn_long,
            burn_short,
            None,
            detail=(
                f"observed {observed:.1f} rps < declared {target:g} rps "
                f"while saturated"
            ),
        )

    def _judge_rpo(self, at: float) -> None:
        durability = self._durability
        for cls in self._watched:
            tracker = durability.tracker_for(cls)
            policy = durability.policy_for(cls)
            if tracker is None or policy is None or not policy.enabled:
                continue
            if tracker.recoveries <= self._rpo_seen.get(cls, 0):
                continue
            self._rpo_seen[cls] = tracker.recoveries
            recovery = tracker.last_recovery
            if recovery is None:
                continue
            rpo = float(recovery["rpo_s"])
            budget = float(policy.rpo_budget_s)
            if rpo <= budget:
                continue
            # Point alert: the budget was exceeded by a completed
            # recovery; it fires and resolves at the same instant.
            alert = SloAlert(
                cls=cls,
                slo="durability_rpo",
                severity="page",
                fired_at=at,
                resolved_at=at,
                burn_long=(rpo / budget) if budget else float("inf"),
                burn_short=(rpo / budget) if budget else float("inf"),
                detail=(
                    f"measured RPO {rpo:.4f}s exceeds budget {budget:.4f}s "
                    f"({recovery['lost_writes']} write(s) lost)"
                ),
            )
            self.alerts.append(alert)
            self._emit("slo.alert", alert)

    def _transition(
        self,
        key: tuple[str, str, str],
        should_fire: bool,
        at: float,
        burn_long: float,
        burn_short: float,
        window: BurnWindow | None,
        detail: str = "",
    ) -> None:
        firing = self._firing.get(key)
        if should_fire and firing is None:
            alert = SloAlert(
                cls=key[0],
                slo=key[1],
                severity=key[2],
                fired_at=at,
                burn_long=burn_long,
                burn_short=burn_short,
                window=window,
                detail=detail,
            )
            self._firing[key] = alert
            self.alerts.append(alert)
            self._emit("slo.alert", alert)
        elif not should_fire and firing is not None:
            firing.resolved_at = at
            del self._firing[key]
            self._emit("slo.resolve", firing)

    def _emit(self, type: str, alert: SloAlert) -> None:
        if self.events is None:
            return
        self.events.record(
            type,
            cls=alert.cls,
            slo=alert.slo,
            severity=alert.severity,
            burn_long=round(alert.burn_long, 3),
            burn_short=round(alert.burn_short, 3),
            detail=alert.detail,
        )

    # -- reporting ---------------------------------------------------------

    def firing(self) -> list[SloAlert]:
        """Alerts currently active, stable order."""
        return [self._firing[key] for key in sorted(self._firing)]

    def report(self) -> dict[str, Any]:
        """The ``slo`` report section: objectives, budgets, alerts."""
        now = self.env.now
        objectives = [
            objective.describe(now, self.config.windows)
            for objective in sorted(self._objectives, key=lambda o: (o.cls, o.slo))
        ]
        for cls in sorted(self._throughput):
            target, _saturated = self._throughput[cls]
            obs = self.monitoring.for_class(cls)
            objectives.append(
                {
                    "cls": cls,
                    "slo": "throughput",
                    "target": target,
                    "budget": self.config.throughput_tolerance,
                    "observed_rps": obs.throughput_rps,
                    "detail": "capacity objective while saturated",
                }
            )
        return {
            "evaluations": self.evaluations,
            "objectives": objectives,
            "alerts": [alert.to_dict() for alert in self.alerts],
            "firing": [alert.to_dict() for alert in self.firing()],
        }

"""Structured control-plane event log.

The tracer answers "where did this request's time go"; the event log
answers "what did the *platform* do and why".  Every control-plane
actor — scheduler, autoscalers, pod lifecycle, template selection, the
requirement optimizer — records typed events with simulated timestamps,
so a run's reconfiguration history is auditable after the fact (the
§III-B monitoring loop made inspectable).

Like the tracer, the log is disabled by default: ``record`` is a single
branch when off, so instrumented call sites stay on hot paths without
cost.  Enable it per platform via ``PlatformConfig(events_enabled=True)``
or ``platform.events.enable()``.

Event types currently emitted by the platform:

=============================  ======================================================
type                           emitted by / fields
=============================  ======================================================
scheduler.place                Scheduler.schedule — pod, node, image, policy
pod.bind                       Cluster.bind_pod — pod, node
pod.ready                      Pod._boot — pod, node, startup_s
pod.terminated                 Cluster.terminate_pod — pod, node
template.select                CRM deploy/update — cls, template, engine
class.deploy                   CRM deploy_class — cls, services, nodes
faas.cold_start                KnativeService — service, pod
autoscale.knative              KnativeService.tick — service, before, after, desired
autoscale.hpa                  HorizontalPodAutoscaler.tick — deployment, before, after
optimizer.decision             RequirementOptimizer — cls, service, action, reason
chaos.inject                   ChaosInjector — plan, kind, fault-specific fields
chaos.recover                  ChaosInjector — plan, kind, fault-specific fields
resilience.retry               InvocationEngine — cls, node, attempt, error
resilience.timeout             InvocationEngine — cls, node, deadline_s
resilience.exhausted           InvocationEngine — cls, node, attempts, error
resilience.shed                InvocationEngine — cls, avoided, node
resilience.stale_read          InvocationEngine — cls, object
resilience.breaker_open        BreakerBoard — cls, node, failures[, probe]
resilience.breaker_half_open   BreakerBoard — cls, node
resilience.breaker_close       BreakerBoard — cls, node
qos.reject                     QosPlane — cls, reason, path, retry_after_s
qos.shed                       OverloadController — cls, count, depth, tier[, brownout]
durability.commit              ClassDurabilityState — cls, object, version
durability.snapshot            SnapshotCoordinator — cls, generation, docs, tombstones
durability.restore             RestoreManager — cls, kind, plus kind-specific fields
scheduler.register             SchedulerPlane — worker, node
scheduler.ready                SchedulerPlane — worker, node
scheduler.install              SchedulerPlane — worker, cls
scheduler.dispatch             SchedulerPlane — worker, request, object, fn
scheduler.complete             SchedulerPlane — worker, request, ok
scheduler.suppressed           SchedulerPlane — worker, request (fenced duplicate)
scheduler.degraded             SchedulerPlane — worker
scheduler.recovered            SchedulerPlane — worker
scheduler.rebind               SchedulerPlane — worker, moved, reason
scheduler.draining             SchedulerPlane — worker
scheduler.dead                 SchedulerPlane — worker, reason, requeued
storage.query                  InvocationEngine.query_objects — cls, matched, scanned,
                               index_used, plan
=============================  ======================================================
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = ["PlatformEvent", "EventLog"]


@dataclass(frozen=True)
class PlatformEvent:
    """One recorded control-plane action."""

    seq: int
    at: float
    type: str
    fields: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "fields", dict(self.fields))

    def to_dict(self) -> dict[str, Any]:
        return {"seq": self.seq, "at": self.at, "type": self.type, **self.fields}


class EventLog:
    """Collects platform events into a bounded buffer."""

    def __init__(self, env, enabled: bool = False, capacity: int = 100_000) -> None:
        self.env = env
        self.enabled = enabled
        self._events: deque[PlatformEvent] = deque(maxlen=capacity)
        self._seq = 0
        self.dropped = 0

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def record(self, type: str, **fields: Any) -> PlatformEvent | None:
        """Append one event; returns ``None`` when the log is off."""
        if not self.enabled:
            return None
        self._seq += 1
        if len(self._events) == self._events.maxlen:
            self.dropped += 1
        event = PlatformEvent(seq=self._seq, at=self.env.now, type=type, fields=fields)
        self._events.append(event)
        return event

    # -- queries -----------------------------------------------------------

    def events(self, type: str | None = None) -> list[PlatformEvent]:
        """All retained events (optionally filtered by type), in order."""
        if type is None:
            return list(self._events)
        return [e for e in self._events if e.type == type]

    def of_type(self, type: str) -> list[PlatformEvent]:
        return self.events(type)

    def type_counts(self) -> dict[str, int]:
        """How many retained events of each type."""
        return dict(Counter(e.type for e in self._events))

    def __len__(self) -> int:
        return len(self._events)

    def render(self, type: str | None = None, limit: int | None = None) -> str:
        """A human-readable listing (newest last)."""
        selected = self.events(type)
        if limit is not None:
            selected = selected[-limit:]
        if not selected:
            scope = f" of type {type!r}" if type else ""
            return f"(no events{scope})"
        lines = []
        for event in selected:
            attrs = " ".join(f"{k}={v}" for k, v in event.fields.items())
            lines.append(f"[{event.at:10.4f}s] {event.type:<20} {attrs}".rstrip())
        return "\n".join(lines)

"""Monitoring: metrics, tracing, control-plane events, and reporting."""

from repro.monitoring.collector import ClassObservations, MonitoringSystem
from repro.monitoring.events import EventLog, PlatformEvent
from repro.monitoring.export import (
    chrome_trace_json,
    format_summary,
    span_breakdown,
    summary_report,
    to_chrome_trace,
)
from repro.monitoring.exposition import metrics_json, render_openmetrics
from repro.monitoring.metrics import Counter, Gauge, Histogram, MetricsRegistry, SlidingWindow
from repro.monitoring.nfr_report import NfrVerdict, format_nfr_report, nfr_compliance_report
from repro.monitoring.plane import MetricsConfig, MetricsPlane
from repro.monitoring.scraper import MetricsScraper, TimeSeries
from repro.monitoring.slo import BurnWindow, SloAlert, SloConfig, SloEvaluator
from repro.monitoring.tracing import Span, Tracer

__all__ = [
    "Span",
    "Tracer",
    "EventLog",
    "PlatformEvent",
    "ClassObservations",
    "MonitoringSystem",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SlidingWindow",
    "MetricsScraper",
    "TimeSeries",
    "MetricsConfig",
    "MetricsPlane",
    "BurnWindow",
    "SloAlert",
    "SloConfig",
    "SloEvaluator",
    "render_openmetrics",
    "metrics_json",
    "to_chrome_trace",
    "chrome_trace_json",
    "span_breakdown",
    "summary_report",
    "format_summary",
    "NfrVerdict",
    "nfr_compliance_report",
    "format_nfr_report",
]

"""Monitoring: metric primitives and the platform metrics hub."""

from repro.monitoring.collector import ClassObservations, MonitoringSystem
from repro.monitoring.metrics import Counter, Gauge, Histogram, MetricsRegistry, SlidingWindow
from repro.monitoring.tracing import Span, Tracer

__all__ = [
    "Span",
    "Tracer",
    "ClassObservations",
    "MonitoringSystem",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SlidingWindow",
]

"""Per-class observation feeding the requirement-driven optimizer."""

from __future__ import annotations

from repro.monitoring.metrics import Histogram, MetricsRegistry, SlidingWindow
from repro.sim.kernel import Environment

__all__ = ["ClassObservations", "MonitoringSystem"]


class ClassObservations:
    """Live + lifetime metrics for one deployed class."""

    def __init__(self, env: Environment, cls: str, window_s: float = 30.0) -> None:
        self.env = env
        self.cls = cls
        self.window = SlidingWindow(window_s)
        self.latency = Histogram(f"{cls}.latency_s")
        self.completed = 0
        self.failed = 0
        #: Latency SLO threshold installed by the SLO evaluator; when
        #: unset (the default, and always when the metrics plane is
        #: off) the slow-request accounting is a single no-op branch.
        self.slo_threshold_s: float | None = None
        #: Invocations slower than the SLO threshold (cumulative).
        self.slow = 0

    def set_latency_slo(self, threshold_s: float) -> None:
        """Start counting invocations slower than ``threshold_s``."""
        self.slo_threshold_s = threshold_s

    def record_invocation(self, latency_s: float, ok: bool) -> None:
        self.window.record(self.env.now, latency_s, ok)
        self.latency.record(latency_s)
        if self.slo_threshold_s is not None and latency_s > self.slo_threshold_s:
            self.slow += 1
        if ok:
            self.completed += 1
        else:
            self.failed += 1

    @property
    def throughput_rps(self) -> float:
        return self.window.throughput(self.env.now)

    @property
    def error_rate(self) -> float:
        return self.window.error_rate(self.env.now)

    def latency_p99_ms(self) -> float:
        return self.window.latency_percentile(self.env.now, 99) * 1000.0

    def latency_pct_ms(self, pct: float) -> float:
        """Windowed latency percentile in milliseconds (0 when empty).

        The overload controller watches p95 rather than p99 so a
        brownout triggers on sustained degradation, not one straggler.
        """
        return self.window.latency_percentile(self.env.now, pct) * 1000.0


class MonitoringSystem:
    """The platform's metrics hub: per-class observations + a registry."""

    def __init__(self, env: Environment, window_s: float = 30.0) -> None:
        self.env = env
        self.window_s = window_s
        self.registry = MetricsRegistry()
        self._classes: dict[str, ClassObservations] = {}

    def for_class(self, cls: str) -> ClassObservations:
        obs = self._classes.get(cls)
        if obs is None:
            obs = ClassObservations(self.env, cls, self.window_s)
            self._classes[cls] = obs
        return obs

    @property
    def observed_classes(self) -> tuple[str, ...]:
        return tuple(sorted(self._classes))

    def snapshot(self) -> dict[str, float]:
        out = self.registry.snapshot()
        for cls, obs in self._classes.items():
            out[f"class.{cls}.throughput_rps"] = obs.throughput_rps
            out[f"class.{cls}.error_rate"] = obs.error_rate
            out[f"class.{cls}.latency_p99_ms"] = obs.latency_p99_ms()
        return out

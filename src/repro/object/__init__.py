"""Object instances and their durable representation."""

from repro.object.obj import ObjectRecord, deterministic_object_ids, new_object_id

__all__ = ["ObjectRecord", "new_object_id", "deterministic_object_ids"]

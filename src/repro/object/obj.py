"""Cloud object instances.

An *object* is an instance of an OaaS class: an identity, a version
counter for optimistic concurrency, a structured-state dict, and
references (object-store keys) for each unstructured FILE entry.

Records are plain data; all behaviour (validation against the class
schema, method dispatch) lives in the control plane and the invoker.
"""

from __future__ import annotations

import itertools
import uuid
from dataclasses import dataclass, field, replace
from typing import Any, Mapping

from repro.errors import ValidationError

__all__ = ["ObjectRecord", "new_object_id", "deterministic_object_ids"]

_id_counter = itertools.count(1)


def new_object_id() -> str:
    """A fresh globally-unique object id."""
    return uuid.uuid4().hex


def deterministic_object_ids(prefix: str = "obj"):
    """An id factory yielding ``prefix-1``, ``prefix-2``, ... — used by
    simulations and tests that need reproducible identities."""
    counter = itertools.count(1)

    def make() -> str:
        return f"{prefix}-{next(counter)}"

    return make


@dataclass(frozen=True)
class ObjectRecord:
    """One object's durable representation.

    Attributes:
        id: object identity, unique within the platform.
        cls: name of the object's class.
        version: optimistic-concurrency counter, bumped on every commit.
        state: structured state (JSON-like values keyed by state key).
        files: FILE state-key name → object-store key.
    """

    id: str
    cls: str
    version: int = 0
    state: Mapping[str, Any] = field(default_factory=dict)
    files: Mapping[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.id:
            raise ValidationError("object id must be non-empty")
        if not self.cls:
            raise ValidationError("object class must be non-empty")
        if self.version < 0:
            raise ValidationError(f"object version must be >= 0, got {self.version}")
        object.__setattr__(self, "state", dict(self.state))
        object.__setattr__(self, "files", dict(self.files))

    def get(self, key: str, default: Any = None) -> Any:
        return self.state.get(key, default)

    def with_updates(
        self,
        state_updates: Mapping[str, Any] | None = None,
        file_updates: Mapping[str, str] | None = None,
    ) -> "ObjectRecord":
        """A new record with updates applied and the version bumped."""
        if not state_updates and not file_updates:
            return self
        state = dict(self.state)
        state.update(state_updates or {})
        files = dict(self.files)
        files.update(file_updates or {})
        return replace(self, version=self.version + 1, state=state, files=files)

    # -- persistence codec -------------------------------------------------

    def to_doc(self) -> dict[str, Any]:
        """Serialize for the document store."""
        return {
            "id": self.id,
            "cls": self.cls,
            "version": self.version,
            "state": dict(self.state),
            "files": dict(self.files),
        }

    @classmethod
    def from_doc(cls, doc: Mapping[str, Any]) -> "ObjectRecord":
        """Deserialize a document-store record."""
        try:
            return cls(
                id=doc["id"],
                cls=doc["cls"],
                version=int(doc["version"]),
                state=doc.get("state", {}),
                files=doc.get("files", {}),
            )
        except KeyError as exc:
            raise ValidationError(f"object document missing field {exc}") from exc

"""Per-class durability policy, derived from the ``persistence`` NFR.

The mapping mirrors how the CRM derives resilience policies at deploy
time (PR 2): the declared constraint picks the *mode*, and the selected
template's knobs (``snapshot_interval_s``, ``retention_s``) tune it.

=============  ==============================================  ==========
persistence    snapshot behaviour                              RPO budget
=============  ==============================================  ==========
``strong``     synchronous epoch write on every commit plus    0
               periodic cuts (point-in-time manifests)
``standard``   periodic consistent cuts at ``interval_s``      interval_s
``none``       disabled (class is ephemeral)                   —
=============  ==============================================  ==========
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ValidationError
from repro.model.nfr import NonFunctionalRequirements

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.crm.template import RuntimeConfig
    from repro.durability.plane import DurabilityConfig

__all__ = ["DurabilityPolicy", "MODE_ON_COMMIT", "MODE_PERIODIC", "MODE_DISABLED"]

#: Synchronous snapshot-on-commit epochs (``persistence: strong``).
MODE_ON_COMMIT = "on_commit"
#: Periodic consistent cuts (``persistence: standard``).
MODE_PERIODIC = "periodic"
#: No durability plane involvement (``persistence: none``).
MODE_DISABLED = "disabled"

_MODES = (MODE_ON_COMMIT, MODE_PERIODIC, MODE_DISABLED)


@dataclass(frozen=True)
class DurabilityPolicy:
    """What the plane enforces for one deployed class.

    Attributes:
        mode: one of :data:`MODE_ON_COMMIT` / :data:`MODE_PERIODIC` /
            :data:`MODE_DISABLED`.
        interval_s: periodic-cut interval (also taken by strong classes
            for their point-in-time manifests).
        retention_s: how long superseded snapshot generations survive
            before GC; ``None`` keeps every generation.
        rpo_budget_s: the recovery-point objective the class accepted by
            declaring its level — 0 for strong, the cut interval for
            periodic.  The NFR report scores measured RPO against it.
    """

    mode: str = MODE_DISABLED
    interval_s: float = 1.0
    retention_s: float | None = None
    rpo_budget_s: float = 0.0

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ValidationError(
                f"durability mode must be one of {list(_MODES)}, got {self.mode!r}"
            )
        if self.interval_s <= 0:
            raise ValidationError(
                f"interval_s must be > 0, got {self.interval_s}"
            )
        if self.retention_s is not None and self.retention_s <= 0:
            raise ValidationError(
                f"retention_s must be > 0, got {self.retention_s}"
            )
        if self.rpo_budget_s < 0:
            raise ValidationError(
                f"rpo_budget_s must be >= 0, got {self.rpo_budget_s}"
            )

    @property
    def enabled(self) -> bool:
        return self.mode != MODE_DISABLED

    @classmethod
    def from_nfr(
        cls,
        nfr: NonFunctionalRequirements,
        runtime_config: "RuntimeConfig | None" = None,
        defaults: "DurabilityConfig | None" = None,
    ) -> "DurabilityPolicy":
        """Derive the policy for a class from its declared constraint.

        The template's ``snapshot_interval_s``/``retention_s`` knobs win
        over the plane-wide defaults; both were validated at
        construction, so no re-checking here.
        """
        level = nfr.constraint.persistence_level
        interval = None
        retention = None
        if runtime_config is not None:
            interval = runtime_config.snapshot_interval_s
            retention = runtime_config.retention_s
        if defaults is not None:
            if interval is None:
                interval = defaults.default_interval_s
            if retention is None:
                retention = defaults.default_retention_s
        if interval is None:
            interval = 1.0
        if level == "none":
            return cls(mode=MODE_DISABLED, interval_s=interval, retention_s=retention)
        if level == "strong":
            return cls(
                mode=MODE_ON_COMMIT,
                interval_s=interval,
                retention_s=retention,
                rpo_budget_s=0.0,
            )
        return cls(
            mode=MODE_PERIODIC,
            interval_s=interval,
            retention_s=retention,
            rpo_budget_s=interval,
        )

    def describe(self) -> dict[str, object]:
        return {
            "mode": self.mode,
            "interval_s": self.interval_s,
            "retention_s": self.retention_s,
            "rpo_budget_s": self.rpo_budget_s,
        }

"""Versioned state tracking and consistent snapshot cuts.

One :class:`ClassDurabilityState` rides along each enabled class's DHT
(attached via ``Dht.attach_durability``), observing every committed
write and delete without touching the documents themselves — the write
path stays byte-identical when no tracker is attached.

The :class:`SnapshotCoordinator` turns that bookkeeping into durable
*generations*: it quiesces the class's write path (the DHT's cut gate),
fences and drains every write-behind queue so a cut never splits a
batch, captures the objects dirtied since the previous cut at one
consistent instant, and uploads an incremental delta snapshot (data
blob + manifest + latest pointer) to the object store.  The manifest's
``index`` maps every live object to the generation holding its bytes,
so restore never has to fold a delta chain blindly and GC knows which
old generations are still referenced.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Generator

from repro.errors import BucketNotFoundError, KeyNotFoundError
from repro.durability.policy import MODE_ON_COMMIT, DurabilityPolicy
from repro.monitoring.events import EventLog
from repro.monitoring.tracing import Tracer
from repro.sim.kernel import Environment, Process
from repro.storage.object_store import ObjectStore

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.storage.dht import Dht

#: Snapshot/restore spans share one synthetic trace, like write-behind
#: flushes: cuts are background work not attributable to one request.
DURABILITY_TRACE_ID = "durability"

__all__ = ["ClassDurabilityState", "SnapshotCoordinator", "DURABILITY_TRACE_ID"]


def data_key(cls: str, generation: int) -> str:
    return f"{cls}/gen-{generation:06d}/data"


def manifest_key(cls: str, generation: int) -> str:
    return f"{cls}/gen-{generation:06d}/manifest"


def epoch_key(cls: str, object_id: str) -> str:
    return f"{cls}/epoch/{object_id}"


def latest_key(cls: str) -> str:
    return f"{cls}/latest"


class ClassDurabilityState:
    """Durability bookkeeping for one class (a side table, never the docs).

    Tracks a monotonic change sequence, which objects are dirty since
    the last cut, commit history per object (for RPO measurement and
    event-log replay), and the snapshot generations minted so far.
    """

    def __init__(
        self,
        env: Environment,
        cls: str,
        policy: DurabilityPolicy,
        object_store: ObjectStore,
        bucket: str,
        events: EventLog | None = None,
    ) -> None:
        self.env = env
        self.cls = cls
        self.policy = policy
        self.object_store = object_store
        self.bucket = bucket
        self.events = events
        #: Monotonic per-class change stamp; every commit/delete bumps it.
        self.seq = 0
        self.next_generation = 1
        #: object id -> seq of its latest change since the last cut.
        self.dirty: dict[str, int] = {}
        #: object id -> seq of its deletion since the last cut.
        self.tombstones: dict[str, int] = {}
        #: object id -> [(sim_time, version), ...] commits not yet known
        #: durable — trimmed at each cut, consumed by recovery.
        self.commits: dict[str, list[tuple[float, int]]] = {}
        #: object id -> latest version persisted as a commit epoch
        #: (``persistence: strong`` only).
        self.epoch_versions: dict[str, int] = {}
        #: Live object id -> (generation, version) across all cuts.
        self.index: dict[str, tuple[int, int]] = {}
        #: Minted generations: {"generation", "cut_time", "captured",
        #: "tombstones"} — GC prunes this list in step with the store.
        self.generations: list[dict[str, Any]] = []
        #: Event-log entries older than this are ignored by
        #: :meth:`commit_history` (reset by point-in-time restore, which
        #: discards history beyond the restore point).
        self.history_floor = 0.0
        self.commits_recorded = 0
        self.epoch_writes = 0
        self.cuts_taken = 0
        self.cuts_skipped = 0
        self.docs_captured = 0
        self.snapshot_bytes = 0
        self.gc_generations = 0
        self.recoveries = 0
        self.restores = 0
        self.last_recovery: dict[str, Any] | None = None
        #: ``(document_store, collection)`` when the platform's store
        #: backend is durable (e.g. SQLite): strong-persistence commits
        #: are written through to it synchronously with the epoch write,
        #: so an acknowledged commit survives process death in the
        #: backend itself, not just the modeled object store.
        self.write_through: tuple[Any, str] | None = None
        self.write_through_docs = 0

    # -- DHT write-path hooks (see Dht.attach_durability) -------------------

    def on_put(self, doc: dict[str, Any]) -> Generator:
        """Record one committed write; synchronous epoch write when the
        class declared ``persistence: strong`` (the commit does not
        return until its epoch object is durable — RPO = 0)."""
        key = doc["id"]
        self.seq += 1
        self.dirty[key] = self.seq
        self.tombstones.pop(key, None)
        version = int(doc.get("version", 0) or 0)
        self.commits.setdefault(key, []).append((self.env.now, version))
        self.commits_recorded += 1
        if self.events is not None:
            self.events.record(
                "durability.commit", cls=self.cls, object=key, version=version
            )
        if self.policy.mode == MODE_ON_COMMIT:
            payload = json.dumps(doc, sort_keys=True, default=str).encode()
            yield self.object_store.put_timed(
                self.bucket, epoch_key(self.cls, key), payload, "application/json"
            )
            self.epoch_writes += 1
            self.epoch_versions[key] = version
            if self.write_through is not None:
                # The timed epoch write above is the modeled durability
                # cost; landing the same doc in the durable backend is
                # bookkeeping on the same commit, so it charges no
                # additional simulated work.
                store, collection = self.write_through
                store.put_sync(collection, doc)
                self.write_through_docs += 1

    def on_delete(self, key: str) -> None:
        """Record one committed delete (the store delete already landed,
        so there is nothing left to lose for this object)."""
        self.seq += 1
        self.tombstones[key] = self.seq
        self.dirty.pop(key, None)
        self.commits.pop(key, None)
        if self.epoch_versions.pop(key, None) is not None:
            try:
                self.object_store.delete_object(self.bucket, epoch_key(self.cls, key))
            except (KeyNotFoundError, BucketNotFoundError):
                pass

    # -- history ------------------------------------------------------------

    def commit_history(self, key: str) -> list[tuple[float, int]]:
        """Commit (time, version) entries for ``key``, replayed from the
        control-plane event log when it is enabled (PR 1), falling back
        to the tracker's own side table otherwise — identical data, but
        the event log survives as an auditable external record."""
        if self.events is not None and self.events.enabled:
            entries = [
                (event.at, int(event.fields.get("version", 0)))
                for event in self.events.of_type("durability.commit")
                if event.fields.get("cls") == self.cls
                and event.fields.get("object") == key
                and event.at >= self.history_floor
            ]
            if entries:
                return entries
        return list(self.commits.get(key, []))

    def describe(self) -> dict[str, Any]:
        return {
            "policy": self.policy.describe(),
            "seq": self.seq,
            "dirty": len(self.dirty),
            "generations": [dict(entry) for entry in self.generations],
            "generation_count": len(self.generations),
            "commits_recorded": self.commits_recorded,
            "epoch_writes": self.epoch_writes,
            "cuts_taken": self.cuts_taken,
            "cuts_skipped": self.cuts_skipped,
            "docs_captured": self.docs_captured,
            "snapshot_bytes": self.snapshot_bytes,
            "gc_generations": self.gc_generations,
            "recoveries": self.recoveries,
            "restores": self.restores,
            "last_recovery": dict(self.last_recovery) if self.last_recovery else None,
        }


class SnapshotCoordinator:
    """Takes consistent cuts of one class and garbage-collects old ones."""

    def __init__(
        self,
        env: Environment,
        dht: "Dht",
        tracker: ClassDurabilityState,
        tracer: Tracer | None = None,
    ) -> None:
        self.env = env
        self.dht = dht
        self.tracker = tracker
        self.tracer = tracer
        self._cutting = False

    def cut(self) -> Process:
        """Take one consistent cut; resolves to the manifest (or ``None``
        when there was nothing new to capture)."""
        return self.env.process(self._cut())

    def _cut(self) -> Generator:
        tracker = self.tracker
        if self._cutting:
            tracker.cuts_skipped += 1
            return None
        if not tracker.dirty and not tracker.tombstones:
            tracker.cuts_skipped += 1
            return None
        self._cutting = True
        try:
            return (yield from self._cut_inner())
        finally:
            self._cutting = False

    def _cut_inner(self) -> Generator:
        tracker = self.tracker
        dht = self.dht
        span = None
        if self.tracer is not None and self.tracer.enabled:
            span = self.tracer.start(
                DURABILITY_TRACE_ID, "durability.snapshot", cls=tracker.cls
            )
        # Quiesce: writers and deleters park on the cut gate; fence the
        # write-behind queues and drain them so the cut never splits a
        # batch (a batch is either wholly before or wholly after it).
        dht.begin_cut()
        cut_open = True
        try:
            dht.fence_queues()
            try:
                yield dht.flush_all()
            finally:
                dht.unfence_queues()
            cut_time = self.env.now
            generation = tracker.next_generation
            tracker.next_generation += 1
            captured: dict[str, dict[str, Any]] = {}
            for key in sorted(tracker.dirty):
                doc = dht.peek(key)
                if doc is None and dht.store is not None and dht.model.persistent:
                    doc = dht.store.get_sync(dht.collection, key)
                if doc is not None:
                    captured[key] = doc
            tombstoned = sorted(tracker.tombstones)
            new_index = dict(tracker.index)
            for key in tombstoned:
                new_index.pop(key, None)
            for key, doc in captured.items():
                new_index[key] = (generation, int(doc.get("version", 0) or 0))
            seq_at_cut = tracker.seq
            tracker.dirty.clear()
            tracker.tombstones.clear()
        finally:
            # Writers resume before the uploads: the cut instant is
            # fixed, and upload time must not extend the write stall.
            dht.end_cut()
            cut_open = False
        del cut_open
        # Commits covered by this cut (version <= the captured version)
        # are durable now; drop them so recovery never counts them lost.
        for key, (_, version) in new_index.items():
            entries = tracker.commits.get(key)
            if entries:
                kept = [entry for entry in entries if entry[1] > version]
                if kept:
                    tracker.commits[key] = kept
                else:
                    tracker.commits.pop(key, None)
        for key in tombstoned:
            tracker.commits.pop(key, None)
        data_bytes = json.dumps(captured, sort_keys=True, default=str).encode()
        manifest = {
            "cls": tracker.cls,
            "generation": generation,
            "cut_time": cut_time,
            "seq": seq_at_cut,
            "index": {key: list(ref) for key, ref in sorted(new_index.items())},
            "captured": sorted(captured),
            "tombstones": tombstoned,
        }
        manifest_bytes = json.dumps(manifest, sort_keys=True).encode()
        store = tracker.object_store
        yield store.put_timed(
            tracker.bucket, data_key(tracker.cls, generation), data_bytes,
            "application/json",
        )
        yield store.put_timed(
            tracker.bucket, manifest_key(tracker.cls, generation), manifest_bytes,
            "application/json",
        )
        pointer = json.dumps({"cls": tracker.cls, "generation": generation}).encode()
        yield store.put_timed(
            tracker.bucket, latest_key(tracker.cls), pointer, "application/json"
        )
        tracker.index = new_index
        tracker.generations.append(
            {
                "generation": generation,
                "cut_time": cut_time,
                "captured": len(captured),
                "tombstones": len(tombstoned),
            }
        )
        tracker.cuts_taken += 1
        tracker.docs_captured += len(captured)
        tracker.snapshot_bytes += len(data_bytes) + len(manifest_bytes)
        if tracker.events is not None:
            tracker.events.record(
                "durability.snapshot",
                cls=tracker.cls,
                generation=generation,
                docs=len(captured),
                tombstones=len(tombstoned),
            )
        if self.tracer is not None:
            self.tracer.finish(span, generation=generation, docs=len(captured))
        self._gc()
        return manifest

    def _gc(self) -> None:
        """Delete generations past retention that the live index no
        longer references.  The latest generation always survives, and a
        referenced generation survives regardless of age — the index is
        incremental, so an unchanged object's bytes may live many
        generations back."""
        tracker = self.tracker
        retention = tracker.policy.retention_s
        if retention is None or not tracker.generations:
            return
        referenced = {ref[0] for ref in tracker.index.values()}
        latest = tracker.generations[-1]["generation"]
        cutoff = self.env.now - retention
        survivors = []
        for entry in tracker.generations:
            generation = entry["generation"]
            if (
                generation != latest
                and generation not in referenced
                and entry["cut_time"] < cutoff
            ):
                for key in (
                    data_key(tracker.cls, generation),
                    manifest_key(tracker.cls, generation),
                ):
                    try:
                        tracker.object_store.delete_object(tracker.bucket, key)
                    except (KeyNotFoundError, BucketNotFoundError):
                        pass
                tracker.gc_generations += 1
            else:
                survivors.append(entry)
        tracker.generations = survivors

"""Durability plane: NFR-driven snapshots, restore, and crash recovery.

Turns the declared ``persistence`` constraint (§II-C) into enforced
durability: consistent snapshot cuts of a class's DHT partitions,
point-in-time restore, and a recovery path off ``Dht.fail_node`` that
reports measured RPO/RTO.  Off by default — with
``DurabilityConfig(enabled=False)`` no plane is constructed and every
data path runs its original (baseline) code.
"""

from repro.durability.plane import DurabilityConfig, DurabilityPlane
from repro.durability.policy import (
    MODE_DISABLED,
    MODE_ON_COMMIT,
    MODE_PERIODIC,
    DurabilityPolicy,
)
from repro.durability.snapshot import ClassDurabilityState, SnapshotCoordinator

__all__ = [
    "DurabilityConfig",
    "DurabilityPlane",
    "DurabilityPolicy",
    "ClassDurabilityState",
    "SnapshotCoordinator",
    "MODE_ON_COMMIT",
    "MODE_PERIODIC",
    "MODE_DISABLED",
]

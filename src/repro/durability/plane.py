"""The durability plane facade: policies, coordinators, restore, recovery.

One object owns the whole subsystem so the platform wires a single
dependency, exactly like the QoS plane (PR 4): the CRM calls
:meth:`DurabilityPlane.attach` as classes deploy, the platform calls
:meth:`on_node_failed` from ``fail_node``, and the gateway/CLI call the
snapshot/restore entry points.

The plane is **off by default**: ``PlatformConfig().durability.enabled``
is False and a disabled plane is never constructed, so the Fig. 3
baseline configurations execute byte-identically with or without this
module imported.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.durability.policy import DurabilityPolicy
from repro.durability.restore import RestoreManager
from repro.durability.snapshot import ClassDurabilityState, SnapshotCoordinator
from repro.errors import UnknownClassError, ValidationError
from repro.model.nfr import _checked_number
from repro.monitoring.collector import MonitoringSystem
from repro.monitoring.events import EventLog
from repro.monitoring.tracing import Tracer
from repro.sim.kernel import Environment, Process
from repro.storage.object_store import ObjectStore

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.crm.manager import ClassRuntimeManager
    from repro.crm.runtime import ClassRuntime

__all__ = ["DurabilityConfig", "DurabilityPlane"]


@dataclass(frozen=True)
class DurabilityConfig:
    """Construction-time knobs of the durability plane.

    Attributes:
        enabled: master switch; when False the platform never builds a
            plane and the storage write path runs its original code.
        bucket: object-store bucket holding snapshot generations,
            manifests, and commit epochs.
        default_interval_s: periodic-cut interval for classes whose
            template does not set ``snapshot_interval_s``.
        default_retention_s: generation retention for classes whose
            template does not set ``retention_s`` (``None`` = keep every
            generation).
    """

    enabled: bool = False
    bucket: str = "oparaca-snapshots"
    default_interval_s: float = 1.0
    default_retention_s: float | None = None

    def __post_init__(self) -> None:
        if not self.bucket:
            raise ValidationError("durability bucket must be non-empty")
        if _checked_number("default_interval_s", self.default_interval_s) <= 0:
            raise ValidationError(
                f"default_interval_s must be > 0, got {self.default_interval_s}"
            )
        if self.default_retention_s is not None:
            if _checked_number("default_retention_s", self.default_retention_s) <= 0:
                raise ValidationError(
                    f"default_retention_s must be > 0, got "
                    f"{self.default_retention_s}"
                )


class DurabilityPlane:
    """Owns snapshots, restore, and crash recovery for one platform."""

    def __init__(
        self,
        env: Environment,
        crm: "ClassRuntimeManager",
        object_store: ObjectStore,
        monitoring: MonitoringSystem | None = None,
        events: EventLog | None = None,
        tracer: Tracer | None = None,
        config: DurabilityConfig | None = None,
    ) -> None:
        self.env = env
        self.crm = crm
        self.object_store = object_store
        self.monitoring = monitoring
        self.events = events
        self.tracer = tracer
        self.config = config or DurabilityConfig(enabled=True)
        object_store.create_bucket(self.config.bucket)
        self.restorer = RestoreManager(env, monitoring, events, tracer)
        self._trackers: dict[str, ClassDurabilityState] = {}
        self._coordinators: dict[str, SnapshotCoordinator] = {}
        self._policies: dict[str, DurabilityPolicy] = {}
        #: Per-class loop identity token: replaced on re-attach/detach so
        #: a superseded periodic loop notices and exits.
        self._loop_tokens: dict[str, object] = {}
        self._recoveries: list[Process] = []
        self._running = True

    # -- class lifecycle (called by the CRM) --------------------------------

    def attach(self, runtime: "ClassRuntime") -> DurabilityPolicy:
        """Derive and enforce the durability policy for a (re)deployed
        class: hook its DHT write path and start the periodic-cut loop.
        Classes whose level is ``none`` get a disabled policy and no
        tracker — their data path is untouched."""
        policy = DurabilityPolicy.from_nfr(
            runtime.resolved.nfr, runtime.template.config, self.config
        )
        runtime.durability = policy
        self._policies[runtime.cls] = policy
        if not policy.enabled:
            self.detach(runtime.cls, runtime=runtime, forget=True)
            self._policies[runtime.cls] = policy
            return policy
        tracker = self._trackers.get(runtime.cls)
        if tracker is None:
            tracker = ClassDurabilityState(
                self.env,
                runtime.cls,
                policy,
                self.object_store,
                self.config.bucket,
                events=self.events,
            )
            self._trackers[runtime.cls] = tracker
        else:
            # Class update: state (and its durability history) carries
            # over with the DHT; only the policy is re-derived.
            tracker.policy = policy
        dht = runtime.dht
        if (
            dht.store is not None
            and dht.model.persistent
            and getattr(dht.store, "durable", False)
        ):
            # A durable store backend (SQLite) gets every strong-
            # persistence commit written through alongside the epoch
            # write, so a restarted process finds its objects in the
            # database file itself.
            tracker.write_through = (dht.store, dht.collection)
        else:
            tracker.write_through = None
        runtime.dht.attach_durability(tracker)
        coordinator = SnapshotCoordinator(self.env, runtime.dht, tracker, self.tracer)
        self._coordinators[runtime.cls] = coordinator
        token = object()
        self._loop_tokens[runtime.cls] = token
        self.env.process(self._periodic(runtime.cls, coordinator, policy, token))
        return policy

    def detach(
        self,
        cls: str,
        runtime: "ClassRuntime | None" = None,
        forget: bool = True,
    ) -> None:
        """Stop enforcing durability for ``cls`` (undeploy, or an update
        that dropped the persistence level)."""
        self._loop_tokens.pop(cls, None)
        self._coordinators.pop(cls, None)
        self._policies.pop(cls, None)
        if forget:
            self._trackers.pop(cls, None)
        if runtime is not None:
            runtime.dht.attach_durability(None)

    def _periodic(
        self,
        cls: str,
        coordinator: SnapshotCoordinator,
        policy: DurabilityPolicy,
        token: object,
    ):
        while self._running and self._loop_tokens.get(cls) is token:
            yield self.env.timeout(policy.interval_s)
            if not self._running or self._loop_tokens.get(cls) is not token:
                return
            yield from coordinator._cut()

    # -- operator entry points ----------------------------------------------

    def snapshot_class(self, cls: str) -> Process:
        """Take a consistent cut of ``cls`` now; resolves to the manifest
        (or ``None`` when nothing changed since the last cut)."""
        return self._coordinator(cls).cut()

    def restore_class(self, cls: str, at: float | None = None) -> Process:
        """Point-in-time restore of a whole class."""
        runtime = self.crm.runtime(cls)
        tracker = self._tracker(cls)
        return self.env.process(self.restorer.restore_class(runtime, tracker, at))

    def restore_object(
        self, cls: str, object_id: str, at: float | None = None
    ) -> Process:
        """Point-in-time restore of one object."""
        runtime = self.crm.runtime(cls)
        tracker = self._tracker(cls)
        return self.env.process(
            self.restorer.restore_object(runtime, tracker, object_id, at)
        )

    def generations(self, cls: str) -> list[dict[str, Any]]:
        """Retained snapshot generations of ``cls`` (oldest first)."""
        return [dict(entry) for entry in self._tracker(cls).generations]

    # -- platform hooks ------------------------------------------------------

    def on_node_failed(
        self, node: str, stats: dict[str, dict[str, int]]
    ) -> list[Process]:
        """Launch crash recovery for every enforced class that lost the
        node.  Recovery runs as simulation processes alongside the
        workload; the returned handles let drills wait for completion."""
        crashed_at = self.env.now
        launched: list[Process] = []
        for cls in sorted(stats):
            tracker = self._trackers.get(cls)
            if tracker is None:
                continue
            runtime = self.crm.runtimes.get(cls)
            if runtime is None:
                continue
            process = self.env.process(
                self.restorer.recover(runtime, tracker, node, crashed_at)
            )
            launched.append(process)
        self._recoveries.extend(launched)
        return launched

    def on_node_joined(self, node: str) -> None:
        """Membership growth needs no durability action — the DHT
        rebalance re-spreads live state and the next cut captures it —
        but the hook keeps the platform seam explicit."""

    def stop(self) -> None:
        """Stop every periodic-cut loop (platform shutdown)."""
        self._running = False
        self._loop_tokens.clear()

    # -- reporting -----------------------------------------------------------

    def policy_for(self, cls: str) -> DurabilityPolicy | None:
        return self._policies.get(cls)

    def tracker_for(self, cls: str) -> ClassDurabilityState | None:
        return self._trackers.get(cls)

    def recoveries(self) -> list[Process]:
        return list(self._recoveries)

    def collect_metrics(self, registry) -> None:
        """Metrics-plane pull hook: per-class snapshot/epoch/recovery
        counters and the last measured RPO/RTO, labeled by class."""
        from repro.monitoring.plane import set_counter

        for cls, tracker in self._trackers.items():
            labels = {"class": cls, "plane": "durability"}
            set_counter(registry, "durability.cuts", float(tracker.cuts_taken), labels)
            set_counter(
                registry, "durability.epoch_writes", float(tracker.epoch_writes), labels
            )
            set_counter(
                registry, "durability.recoveries", float(tracker.recoveries), labels
            )
            set_counter(
                registry, "durability.restores", float(tracker.restores), labels
            )
            set_counter(
                registry,
                "durability.snapshot_bytes",
                float(tracker.snapshot_bytes),
                labels,
            )
            recovery = tracker.last_recovery
            if recovery is not None:
                registry.gauge("durability.last_rpo_s", labels).set(
                    float(recovery["rpo_s"])
                )
                registry.gauge("durability.last_rto_s", labels).set(
                    float(recovery["rto_s"])
                )

    def stats(self) -> dict[str, Any]:
        """Plane-wide statistics for the observability report."""
        classes: dict[str, Any] = {}
        for cls in sorted(self._policies):
            tracker = self._trackers.get(cls)
            if tracker is not None:
                classes[cls] = tracker.describe()
            else:
                classes[cls] = {"policy": self._policies[cls].describe()}
        return {
            "bucket": self.config.bucket,
            "classes": classes,
            "cuts_total": sum(t.cuts_taken for t in self._trackers.values()),
            "epoch_writes_total": sum(
                t.epoch_writes for t in self._trackers.values()
            ),
            "recoveries_total": sum(
                t.recoveries for t in self._trackers.values()
            ),
            "restores_total": sum(t.restores for t in self._trackers.values()),
        }

    # -- helpers -------------------------------------------------------------

    def _tracker(self, cls: str) -> ClassDurabilityState:
        tracker = self._trackers.get(cls)
        if tracker is None:
            self.crm.runtime(cls)  # raises UnknownClassError when undeployed
            raise ValidationError(
                f"durability is not enforced for class {cls!r} "
                f"(persistence level 'none' or plane attached after deploy)"
            )
        return tracker

    def _coordinator(self, cls: str) -> SnapshotCoordinator:
        coordinator = self._coordinators.get(cls)
        if coordinator is None:
            self._tracker(cls)  # raises with the right error type
            raise UnknownClassError(f"class {cls!r} has no snapshot coordinator")
        return coordinator

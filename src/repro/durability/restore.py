"""Point-in-time restore and measured crash recovery.

Restore is the *operator* path: roll a class (or a single object) back
to the latest snapshot generation at or before a requested point in
time, paying timed object-store reads for the manifest and every data
blob the manifest's index references.

Recovery is the *platform* path: after ``Dht.fail_node`` drops a
partition (and its unflushed write-behind buffer), the plane reloads
lost state from the best durable source per object — flushed store
copy, snapshot generation, or commit epoch — replays the commit history
(the control-plane event log when enabled) up to the crash point to
find what could not be recovered, and reports measured **RPO**
(sim-seconds between the crash and the earliest unrecovered commit) and
**RTO** (sim-seconds from the crash to the first successful read after
reinstall).
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Generator

from repro.durability.policy import MODE_ON_COMMIT
from repro.durability.snapshot import (
    DURABILITY_TRACE_ID,
    ClassDurabilityState,
    data_key,
    epoch_key,
    manifest_key,
)
from repro.errors import BucketNotFoundError, KeyNotFoundError, SnapshotNotFoundError
from repro.monitoring.collector import MonitoringSystem
from repro.monitoring.events import EventLog
from repro.monitoring.tracing import Tracer
from repro.sim.kernel import Environment

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.crm.runtime import ClassRuntime

__all__ = ["RestoreManager"]


def _doc_version(doc: dict[str, Any] | None) -> int:
    """Version of a record, with ``-1`` for "absent" so that a present
    version-0 document still beats no document at all."""
    if doc is None:
        return -1
    return int(doc.get("version", 0) or 0)


class RestoreManager:
    """Executes restores and crash recoveries for the durability plane."""

    def __init__(
        self,
        env: Environment,
        monitoring: MonitoringSystem | None = None,
        events: EventLog | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.env = env
        self.monitoring = monitoring
        self.events = events
        self.tracer = tracer

    # -- point-in-time restore ----------------------------------------------

    def restore_class(
        self,
        runtime: "ClassRuntime",
        tracker: ClassDurabilityState,
        at: float | None = None,
    ) -> Generator:
        """Roll the whole class back to the latest cut at or before
        ``at`` (latest overall when ``None``).  Resolves to a summary
        dict; raises :class:`SnapshotNotFoundError` when no generation
        qualifies."""
        entry = self._generation_at(tracker, at)
        generation = entry["generation"]
        span = None
        if self.tracer is not None and self.tracer.enabled:
            span = self.tracer.start(
                DURABILITY_TRACE_ID,
                "durability.restore",
                cls=tracker.cls,
                kind="pit",
                generation=generation,
            )
        store = tracker.object_store
        manifest_obj = yield store.get_timed(
            tracker.bucket, manifest_key(tracker.cls, generation)
        )
        manifest = json.loads(manifest_obj.data)
        index = {key: (ref[0], ref[1]) for key, ref in manifest["index"].items()}
        docs = yield from self._fetch_indexed_docs(tracker, index)
        dht = runtime.dht
        purged = 0
        for key in dht.scan_ids():
            if key not in index:
                yield dht.purge(key)
                purged += 1
        for key in sorted(docs):
            dht.seed(docs[key], persist=True)
        tracker.index = index
        self._reset_epochs(tracker, docs)
        tracker.dirty.clear()
        tracker.tombstones.clear()
        tracker.commits.clear()
        tracker.history_floor = self.env.now
        tracker.restores += 1
        summary = {
            "class": tracker.cls,
            "generation": generation,
            "cut_time": entry["cut_time"],
            "restored": len(docs),
            "purged": purged,
        }
        if self.events is not None:
            self.events.record("durability.restore", kind="pit", **summary)
        if self.tracer is not None:
            self.tracer.finish(span, restored=len(docs), purged=purged)
        return summary

    def restore_object(
        self,
        runtime: "ClassRuntime",
        tracker: ClassDurabilityState,
        object_id: str,
        at: float | None = None,
    ) -> Generator:
        """Roll one object back to its state at the latest cut at or
        before ``at``.  The manifest at that point is authoritative: an
        object absent from it was not alive then, which is a
        :class:`SnapshotNotFoundError`."""
        entry = self._generation_at(tracker, at)
        generation = entry["generation"]
        store = tracker.object_store
        manifest_obj = yield store.get_timed(
            tracker.bucket, manifest_key(tracker.cls, generation)
        )
        manifest = json.loads(manifest_obj.data)
        ref = manifest["index"].get(object_id)
        if ref is None:
            raise SnapshotNotFoundError(
                f"object {object_id!r} of class {tracker.cls!r} is not in "
                f"snapshot generation {generation} (cut at {entry['cut_time']})"
            )
        source_gen, version = int(ref[0]), int(ref[1])
        blob = yield store.get_timed(
            tracker.bucket, data_key(tracker.cls, source_gen)
        )
        doc = json.loads(blob.data).get(object_id)
        if doc is None:
            raise SnapshotNotFoundError(
                f"object {object_id!r} missing from generation {source_gen} "
                f"data blob of class {tracker.cls!r} (garbage-collected?)"
            )
        runtime.dht.seed(doc, persist=True)
        self._reset_epochs(tracker, {object_id: doc})
        tracker.index[object_id] = (source_gen, version)
        tracker.dirty.pop(object_id, None)
        tracker.tombstones.pop(object_id, None)
        tracker.commits.pop(object_id, None)
        tracker.restores += 1
        summary = {
            "class": tracker.cls,
            "object": object_id,
            "generation": generation,
            "version": version,
            "cut_time": entry["cut_time"],
        }
        if self.events is not None:
            self.events.record("durability.restore", kind="pit-object", **summary)
        return summary

    # -- crash recovery -----------------------------------------------------

    def recover(
        self,
        runtime: "ClassRuntime",
        tracker: ClassDurabilityState,
        node: str,
        crashed_at: float,
    ) -> Generator:
        """Reload state lost with ``node`` and measure RPO/RTO.

        Per candidate object the best durable source wins: the live
        replica (survived in another node's memory), the flushed store
        copy, the snapshot index, or — for strong classes — the commit
        epoch.  A durable copy is only installed over a *lower* live
        version, so recovery can never roll back a write that landed
        after the crash."""
        span = None
        if self.tracer is not None and self.tracer.enabled:
            span = self.tracer.start(
                DURABILITY_TRACE_ID,
                "durability.restore",
                cls=tracker.cls,
                kind="recovery",
                node=node,
            )
        dht = runtime.dht
        store = tracker.object_store
        candidates = sorted(
            set(tracker.index)
            | {key for key, entries in tracker.commits.items() if entries}
            | set(tracker.epoch_versions)
        )
        best: dict[str, tuple[int, dict[str, Any] | None]] = {}
        needed_gens: set[int] = set()
        needed_epochs: list[str] = []
        for key in candidates:
            live_version = _doc_version(dht.peek(key))
            store_doc = None
            if dht.store is not None and dht.model.persistent:
                store_doc = dht.store.get_sync(dht.collection, key)
            store_version = _doc_version(store_doc)
            if store_version > live_version:
                best[key] = (store_version, store_doc)
            else:
                best[key] = (live_version, None)
            snap_ref = tracker.index.get(key)
            if snap_ref is not None and snap_ref[1] > best[key][0]:
                needed_gens.add(snap_ref[0])
            epoch_version = tracker.epoch_versions.get(key, -1)
            if epoch_version > best[key][0] and (
                snap_ref is None or epoch_version > snap_ref[1]
            ):
                needed_epochs.append(key)
        # Timed reads: each referenced generation blob once, plus any
        # commit epochs that are newer than everything else.
        for generation in sorted(needed_gens):
            blob = yield store.get_timed(
                tracker.bucket, data_key(tracker.cls, generation)
            )
            for key, doc in json.loads(blob.data).items():
                ref = tracker.index.get(key)
                if ref is None or ref[0] != generation:
                    continue
                if key in best and ref[1] > best[key][0]:
                    best[key] = (ref[1], doc)
        for key in needed_epochs:
            try:
                obj = yield store.get_timed(
                    tracker.bucket, epoch_key(tracker.cls, key)
                )
            except (KeyNotFoundError, BucketNotFoundError):
                continue
            doc = json.loads(obj.data)
            version = _doc_version(doc)
            if version > best[key][0]:
                best[key] = (version, doc)
        restored = 0
        for key in candidates:
            version, doc = best[key]
            if doc is not None and version > _doc_version(dht.peek(key)):
                dht.seed(doc, persist=False)
                tracker.dirty.setdefault(key, tracker.seq)
                restored += 1
        # Replay the commit history up to the crash point: anything the
        # durable sources could not reach is lost and defines the RPO.
        lost_writes = 0
        replayed = 0
        earliest_lost: float | None = None
        for key in candidates:
            recovered_version = max(best[key][0], _doc_version(dht.peek(key)))
            snap_ref = tracker.index.get(key)
            snap_version = snap_ref[1] if snap_ref is not None else -1
            entries = tracker.commit_history(key)
            kept: list[tuple[float, int]] = []
            for at, version in entries:
                if at <= crashed_at and version > recovered_version:
                    lost_writes += 1
                    if earliest_lost is None or at < earliest_lost:
                        earliest_lost = at
                    continue  # permanently gone; drop from the side table
                if at <= crashed_at and snap_version < version <= recovered_version:
                    replayed += 1
                kept.append((at, version))
            if key in tracker.commits:
                if kept:
                    tracker.commits[key] = kept
                else:
                    tracker.commits.pop(key, None)
        rpo_s = crashed_at - earliest_lost if earliest_lost is not None else 0.0
        # RTO: the first successful data-plane read after reinstall.
        probe_key = next((key for key in candidates if dht.peek(key) is not None), None)
        if probe_key is not None:
            yield dht.get(probe_key, caller=dht.nodes[0])
        rto_s = self.env.now - crashed_at
        tracker.recoveries += 1
        tracker.last_recovery = {
            "node": node,
            "crashed_at": crashed_at,
            "completed_at": self.env.now,
            "rpo_s": rpo_s,
            "rto_s": rto_s,
            "lost_writes": lost_writes,
            "replayed_commits": replayed,
            "restored_docs": restored,
        }
        if self.monitoring is not None:
            registry = self.monitoring.registry
            registry.histogram(f"durability.rpo_s.{tracker.cls}").record(rpo_s)
            registry.histogram(f"durability.rto_s.{tracker.cls}").record(rto_s)
        if self.events is not None:
            self.events.record(
                "durability.restore",
                kind="recovery",
                cls=tracker.cls,
                node=node,
                rpo_s=rpo_s,
                rto_s=rto_s,
                lost_writes=lost_writes,
                restored_docs=restored,
            )
        if self.tracer is not None:
            self.tracer.finish(
                span, rpo_s=rpo_s, rto_s=rto_s, restored=restored, lost=lost_writes
            )
        return dict(tracker.last_recovery)

    # -- helpers ------------------------------------------------------------

    def _generation_at(
        self, tracker: ClassDurabilityState, at: float | None
    ) -> dict[str, Any]:
        candidates = [
            entry
            for entry in tracker.generations
            if at is None or entry["cut_time"] <= at
        ]
        if not candidates:
            when = "any point" if at is None else f"t={at}"
            raise SnapshotNotFoundError(
                f"class {tracker.cls!r} has no snapshot generation at {when} "
                f"({len(tracker.generations)} generation(s) retained)"
            )
        return candidates[-1]

    def _fetch_indexed_docs(
        self, tracker: ClassDurabilityState, index: dict[str, tuple[int, int]]
    ) -> Generator:
        """Timed reads of every generation blob the index references,
        returning the docs for exactly the indexed keys."""
        docs: dict[str, dict[str, Any]] = {}
        for generation in sorted({ref[0] for ref in index.values()}):
            try:
                blob = yield tracker.object_store.get_timed(
                    tracker.bucket, data_key(tracker.cls, generation)
                )
            except (KeyNotFoundError, BucketNotFoundError) as exc:
                raise SnapshotNotFoundError(
                    f"generation {generation} of class {tracker.cls!r} is "
                    f"referenced by the restore manifest but missing from the "
                    f"store"
                ) from exc
            for key, doc in json.loads(blob.data).items():
                if index.get(key, (None,))[0] == generation:
                    docs[key] = doc
        return docs

    def _reset_epochs(
        self, tracker: ClassDurabilityState, docs: dict[str, dict[str, Any]]
    ) -> None:
        """After a rollback, commit epochs must match the restored state
        or the next recovery would replay the discarded future."""
        if tracker.policy.mode != MODE_ON_COMMIT:
            return
        for key, doc in docs.items():
            payload = json.dumps(doc, sort_keys=True, default=str).encode()
            tracker.object_store.put_object(
                tracker.bucket, epoch_key(tracker.cls, key), payload, "application/json"
            )
            tracker.epoch_versions[key] = _doc_version(doc)
        for key in list(tracker.epoch_versions):
            if key not in docs and key not in tracker.index:
                try:
                    tracker.object_store.delete_object(
                        tracker.bucket, epoch_key(tracker.cls, key)
                    )
                except (KeyNotFoundError, BucketNotFoundError):
                    pass
                tracker.epoch_versions.pop(key, None)

"""Distributed in-memory hash table (the paper's structured-state tier).

Object records are partitioned over the worker nodes with consistent
hashing and held in memory on their owner (plus replicas).  Reads hit
the owner's memory; on a miss the record is loaded from the document
store and cached.  Writes update the owner (and replicas) in memory and
— when the class is persistent — enqueue to a per-node write-behind
queue that batches them into the document store (§V: "distributed
in-memory hash table to consolidate data for batch write operations").

The caller passes its node name so network locality is modelled: a
caller co-located with the partition owner pays only loopback latency,
which is what the locality-aware router (ABL-LOCALITY) exploits.
"""

from __future__ import annotations

import copy
import json
from dataclasses import dataclass
from typing import Any, Generator

from repro.errors import (
    ConcurrentModificationError,
    NetworkPartitionError,
    StorageError,
)
from repro.monitoring.tracing import Tracer
from repro.sim.kernel import Environment, Process, all_of
from repro.sim.network import Network
from repro.sim.resources import Gate
from repro.storage.hashring import HashRing
from repro.storage.kv import DocumentStore
from repro.storage.read_path import ReadBatchConfig, ReadBatcher
from repro.storage.write_behind import WriteBehindConfig, WriteBehindQueue

__all__ = ["DhtModel", "Dht"]


@dataclass(frozen=True)
class DhtModel:
    """Performance/replication parameters of the in-memory tier.

    Attributes:
        op_cost_s: CPU time on the owner node per get/put.
        replication: total copies of each record (1 = no replicas).
        persistent: write-behind updates to the document store.  With
            ``False`` the tier is memory-only — Fig. 3's
            ``oprc-bypass-nonpersist`` configuration.
        write_behind: batching configuration when persistent.
        read_coalescing: single-flight store reads — concurrent misses
            on the same key collapse into ONE in-flight document-store
            read; waiters park on a per-key gate and share the result.
            Kills the thundering-herd read storm after a node failure,
            rebalance, or cold-start chaos event.
        read_batch: when set, miss reads go through a
            :class:`~repro.storage.read_path.ReadBatcher` that lingers
            briefly and issues one multi-get (``op_cost + k *
            read_cost``) per window instead of ``k`` point reads.
        near_cache_entries: when > 0, each node keeps a bounded LRU
            *near cache* of records it fetched as a non-owner caller.
            Invalidated on every put/delete and dropped wholesale on
            membership change; a near-cache hit can still serve a copy
            at most one commit stale, which the invoker's optimistic
            CAS commit detects (retries reload with ``fresh=True``).
            ``0`` disables the cache.
    """

    op_cost_s: float = 0.00002
    replication: int = 1
    persistent: bool = True
    write_behind: WriteBehindConfig = WriteBehindConfig()
    #: Per-node resident-entry cap; ``None`` = unbounded.  Over the cap,
    #: the least-recently-used entry is evicted.  For persistent caches
    #: eviction is safe (misses reload from the document store); for
    #: ephemeral caches an evicted entry is gone, like any cache.
    max_entries_per_node: int | None = None
    read_coalescing: bool = False
    read_batch: ReadBatchConfig | None = None
    near_cache_entries: int = 0

    def __post_init__(self) -> None:
        if self.replication < 1:
            raise StorageError(f"replication must be >= 1, got {self.replication}")
        if self.op_cost_s < 0:
            raise StorageError(f"op_cost_s must be >= 0, got {self.op_cost_s}")
        if self.max_entries_per_node is not None and self.max_entries_per_node < 1:
            raise StorageError(
                f"max_entries_per_node must be >= 1, got {self.max_entries_per_node}"
            )
        if self.near_cache_entries < 0:
            raise StorageError(
                f"near_cache_entries must be >= 0, got {self.near_cache_entries}"
            )


def doc_size_bytes(doc: dict[str, Any]) -> int:
    """Approximate wire size of a record (JSON encoding)."""
    try:
        return len(json.dumps(doc, separators=(",", ":"), default=str))
    except (TypeError, ValueError):
        return 512


class Dht:
    """The distributed hash table spanning the cluster's worker nodes."""

    def __init__(
        self,
        env: Environment,
        nodes: list[str],
        network: Network,
        store: DocumentStore | None = None,
        model: DhtModel | None = None,
        collection: str = "objects",
        tracer: Tracer | None = None,
    ) -> None:
        if not nodes:
            raise StorageError("DHT requires at least one node")
        self.env = env
        self.network = network
        self.store = store
        self.model = model or DhtModel()
        self.collection = collection
        self.tracer = tracer
        if self.model.persistent and store is None:
            raise StorageError("persistent DHT requires a document store")
        self.ring = HashRing(list(nodes))
        self._mem: dict[str, dict[str, dict[str, Any]]] = {n: {} for n in nodes}
        #: Per-node near cache: records fetched by this node as a
        #: *non-owner* caller.  Empty (and never consulted) unless
        #: ``model.near_cache_entries > 0``.
        self._near: dict[str, dict[str, dict[str, Any]]] = {n: {} for n in nodes}
        #: key -> gate of the single in-flight store read for that key
        #: (read_coalescing); later misses wait here instead of issuing
        #: their own read.
        self._inflight_reads: dict[str, Gate] = {}
        self._queues: dict[str, WriteBehindQueue] = {}
        if self.model.persistent:
            for node in nodes:
                self._queues[node] = WriteBehindQueue(
                    env,
                    store,
                    collection,
                    self.model.write_behind,
                    name=f"wb-{node}",
                    tracer=tracer,
                )
        #: Durability tracker attached by the durability plane (``None``
        #: keeps the write path byte-identical to the baseline).
        self._durability = None
        #: Class-wide quiescence gate held by a snapshot cut: while set,
        #: writes and deletes park here so the cut observes a consistent
        #: instant across every partition.
        self._cut_gate: Gate | None = None
        #: key -> node ownership overrides installed by live migration
        #: (federation plane).  Empty on a baseline platform, and
        #: :meth:`owner`/:meth:`owners` only consult the dict when at
        #: least one pin exists, so the unpinned path is unchanged.
        self._pins: dict[str, str] = {}
        #: key -> migration epoch, bumped at the start of each handoff.
        #: A put that captured the previous epoch fences itself before
        #: installing, so an in-flight commit on the old owner can never
        #: resurrect pre-migration state.
        self._pin_epochs: dict[str, int] = {}
        self._read_batcher: ReadBatcher | None = None
        if (
            self.model.read_batch is not None
            and self.model.persistent
            and store is not None
        ):
            self._read_batcher = ReadBatcher(
                env, store, collection, self.model.read_batch, name=f"rb-{collection}"
            )
        self.gets = 0
        self.puts = 0
        self.mem_hits = 0
        self.mem_misses = 0
        self.evictions = 0
        self.failover_reads = 0
        self.failover_writes = 0
        self.replication_skips = 0
        self.stale_reads = 0
        self.read_coalesced = 0
        self.near_hits = 0
        self.near_evictions = 0
        self.near_invalidations = 0

    # -- topology ----------------------------------------------------------

    @property
    def nodes(self) -> tuple[str, ...]:
        return self.ring.nodes

    def owner(self, key: str) -> str:
        """Primary owner node of an object key (used for locality routing).

        A migration pin overrides the hash ring: the pinned node is the
        primary until the key is unpinned or the node fails.
        """
        if self._pins:
            pinned = self._pins.get(key)
            if pinned is not None:
                return pinned
        return self.ring.owner(key)

    def owners(self, key: str) -> list[str]:
        ring_owners = self.ring.owners(key, self.model.replication)
        if self._pins:
            pinned = self._pins.get(key)
            if pinned is not None:
                followers = [n for n in ring_owners if n != pinned]
                return [pinned] + followers[: self.model.replication - 1]
        return ring_owners

    # -- data path -----------------------------------------------------------

    def get(self, key: str, caller: str | None = None, fresh: bool = False) -> Process:
        """Fetch a record; the process resolves to the doc or ``None``.

        ``fresh=True`` bypasses the caller's near cache (when one is
        enabled) and reads through to an owner — the invoker passes it
        on CAS-conflict reloads so an optimistic retry can never spin on
        a stale near-cache copy.
        """
        return self.env.process(self._get(key, caller, fresh))

    def _get(self, key: str, caller: str | None, fresh: bool = False) -> Generator:
        self.gets += 1
        if self.model.near_cache_entries and not fresh and caller is not None:
            cached = self._near_lookup(caller, key)
            if cached is not None:
                # Served from the caller's own near cache: loopback
                # transfer plus the usual per-op CPU cost, no owner RPC.
                self.near_hits += 1
                yield self.network.transfer(caller, caller, 128)
                if self.model.op_cost_s:
                    yield self.env.timeout(self.model.op_cost_s)
                return copy.deepcopy(cached)
        owners = self.owners(key)
        first = caller if caller in owners else owners[0]
        # Read failover: try the nearest owner first, then the remaining
        # replicas.  Without injected faults the loop runs exactly once.
        order = [first] + [o for o in owners if o != first]
        partition_error: NetworkPartitionError | None = None
        for node in order:
            try:
                yield self.network.transfer(caller, node, 128)
            except NetworkPartitionError as exc:
                partition_error = exc
                self.failover_reads += 1
                continue
            if self.model.op_cost_s:
                yield self.env.timeout(self.model.op_cost_s)
            doc = self._mem[node].get(key)
            if doc is not None:
                self.mem_hits += 1
                self._touch(node, key)
                self._trim(node, protect=key)
                yield self.network.transfer(node, caller, doc_size_bytes(doc))
                self._near_install(caller, key, doc)
                return copy.deepcopy(doc)
            self.mem_misses += 1
            if self.store is not None and self.model.persistent:
                loaded = yield from self._load_miss(key, node, owners)
                if loaded is not None:
                    yield self.network.transfer(node, caller, doc_size_bytes(loaded))
                    self._near_install(caller, key, loaded)
                    return copy.deepcopy(loaded)
            return None
        raise partition_error

    def _load_miss(self, key: str, node: str, owners: list[str]) -> Generator:
        """Load a missed key from the document store via owner ``node``.

        With ``read_coalescing`` the first miss becomes the *leader*: it
        issues the store read (point read or batched multi-get) and
        installs the result into the reachable owners' memory; every
        concurrent miss on the same key parks on the leader's gate and
        shares the result without touching the store.
        """
        if not self.model.read_coalescing:
            loaded = yield from self._store_read(key)
            if loaded is not None:
                self._install_owners(key, node, owners, loaded)
            return loaded
        gate = self._inflight_reads.get(key)
        if gate is not None:
            self.read_coalesced += 1
            loaded = yield gate.wait()
            return loaded
        gate = Gate(self.env)
        self._inflight_reads[key] = gate
        loaded = None
        try:
            loaded = yield from self._store_read(key)
            if loaded is not None:
                self._install_owners(key, node, owners, loaded)
        finally:
            self._inflight_reads.pop(key, None)
            gate.fire(loaded)
        return loaded

    def _store_read(self, key: str) -> Generator:
        """One document-store read, through the miss batcher when on."""
        if self._read_batcher is not None:
            doc = yield from self._read_batcher.read(key)
            return copy.deepcopy(doc) if doc is not None else None
        doc = yield self.store.read(self.collection, key)
        return doc

    def _install_owners(
        self, key: str, node: str, owners: list[str], loaded: dict[str, Any]
    ) -> None:
        for replica in owners:
            # Never push a (possibly stale) store copy into an
            # unreachable owner's memory over a partition.
            if replica == node or not self.network.is_partitioned(node, replica):
                self._install(replica, key, copy.deepcopy(loaded))

    def put(self, doc: dict[str, Any], caller: str | None = None) -> Process:
        """Store a record unconditionally; resolves to the stored doc."""
        return self.env.process(self._put(doc, caller, expected_version=None))

    def compare_and_put(
        self, doc: dict[str, Any], expected_version: int, caller: str | None = None
    ) -> Process:
        """Store a record only if the current version matches.

        The process fails with :class:`ConcurrentModificationError` when
        another writer committed in between — the invoker's optimistic
        concurrency control.
        """
        return self.env.process(self._put(doc, caller, expected_version=expected_version))

    def _put(
        self, doc: dict[str, Any], caller: str | None, expected_version: int | None
    ) -> Generator:
        key = doc.get("id")
        if not key:
            raise StorageError("DHT put of a document without 'id'")
        while self._cut_gate is not None:
            yield self._cut_gate.wait()
        self.puts += 1
        fence_epoch = self._pin_epochs.get(key, 0)
        owners = self.owners(key)
        size = doc_size_bytes(doc)
        # Sloppy-quorum accept: the first *reachable* owner acts as
        # primary.  Healthy runs take the first iteration unconditionally.
        primary: str | None = None
        partition_error: NetworkPartitionError | None = None
        for node in owners:
            try:
                yield self.network.transfer(caller, node, size)
                primary = node
                break
            except NetworkPartitionError as exc:
                partition_error = exc
                self.failover_writes += 1
        if primary is None:
            raise partition_error
        if self.model.op_cost_s:
            yield self.env.timeout(self.model.op_cost_s)
        if expected_version is not None:
            current = self._mem[primary].get(key)
            current_version = current.get("version", 0) if current else 0
            if current_version != expected_version:
                raise ConcurrentModificationError(
                    f"object {key!r}: expected version {expected_version}, "
                    f"found {current_version}"
                )
        # Migration epoch fence: a handoff completed while this commit
        # was in flight repointed ownership, so installing here would
        # resurrect stale state on the old owner.  Fail the commit as a
        # version conflict — the invoker reloads (now routed to the new
        # owner) and retries.  No yields sit between this check and the
        # install, so a commit that passes it is captured by the
        # migration's best-copy read.
        if self._pin_epochs and self._pin_epochs.get(key, 0) != fence_epoch:
            raise ConcurrentModificationError(
                f"object {key!r}: ownership migrated while the commit was in flight"
            )
        stored = copy.deepcopy(doc)
        self._install(primary, key, stored)
        # Commit invalidates every near-cached copy: the next non-fresh
        # read on any caller refetches from an owner.
        self._near_invalidate(key)
        replicas = [o for o in owners if o != primary]
        if replicas:
            reachable = [
                r for r in replicas if not self.network.is_partitioned(primary, r)
            ]
            self.replication_skips += len(replicas) - len(reachable)
            if reachable:
                yield all_of(
                    self.env,
                    [self.network.transfer(primary, r, size) for r in reachable],
                )
                for replica in reachable:
                    self._install(replica, key, copy.deepcopy(stored))
        queue = self._queues.get(primary)
        if queue is not None:
            yield from queue.enqueue_blocking(copy.deepcopy(stored))
        if self._durability is not None:
            yield from self._durability.on_put(stored)
        return copy.deepcopy(stored)

    def stale_get(self, key: str) -> Process:
        """Last-resort read straight from the document store, bypassing
        the (unreachable) owner set — graceful degradation for
        persistent classes when every owner is partitioned away.  The
        result may lag the in-memory truth by the write-behind window.
        Resolves to the doc or ``None``; raises for ephemeral tiers."""
        if self.store is None or not self.model.persistent:
            raise StorageError(
                f"collection {self.collection!r} is ephemeral: no durable "
                "copy to serve a stale read from"
            )
        return self.env.process(self._stale_get(key))

    def _stale_get(self, key: str) -> Generator:
        self.stale_reads += 1
        doc = yield self.store.read(self.collection, key)
        return doc

    def delete(self, key: str, caller: str | None = None) -> Process:
        """Remove a record from memory (and, if persistent, the store)."""
        return self.env.process(self._delete(key, caller))

    def _delete(self, key: str, caller: str | None) -> Generator:
        while self._cut_gate is not None:
            yield self._cut_gate.wait()
        owners = self.owners(key)
        yield self.network.transfer(caller, owners[0], 128)
        if self.model.op_cost_s:
            yield self.env.timeout(self.model.op_cost_s)
        for node in owners:
            self._mem[node].pop(key, None)
        self._near_invalidate(key)
        # A buffered (not yet flushed) update must not resurrect the
        # object after the store delete lands.  Check EVERY node's
        # queue, not just the current primary's: a sloppy-quorum write
        # during a partition buffers on the failover primary, and a
        # rebalance can leave buffered updates on ex-owners.
        for queue in self._queues.values():
            queue.discard(key)
        if self.store is not None and self.model.persistent:
            yield self.store.delete(self.collection, key)
        if self._durability is not None:
            self._durability.on_delete(key)

    # -- residency helpers -------------------------------------------------------

    def _touch(self, node: str, key: str) -> None:
        """Move ``key`` to the recently-used end of the node's map."""
        mem = self._mem[node]
        mem[key] = mem.pop(key)

    def _install(self, node: str, key: str, doc: dict[str, Any]) -> None:
        """Insert/refresh an entry, evicting LRU entries over the cap.

        Entries buffered for write-behind are never evicted: their only
        up-to-date copy is the in-memory one until the flusher runs.
        """
        mem = self._mem[node]
        mem.pop(key, None)
        mem[key] = doc
        self._trim(node, protect=key)

    def _trim(self, node: str, protect: str) -> None:
        """Evict LRU entries above the cap, sparing ``protect`` and any
        entry still buffered for write-behind (its only up-to-date copy
        is in memory until the flusher runs)."""
        cap = self.model.max_entries_per_node
        if cap is None:
            return
        mem = self._mem[node]
        queue = self._queues.get(node)
        pending = queue._buffer if queue is not None else {}
        while len(mem) > cap:
            victim = next(
                (k for k in mem if k != protect and k not in pending), None
            )
            if victim is None:
                return  # everything resident is pinned
            del mem[victim]
            self.evictions += 1

    # -- near cache (non-owner callers) ------------------------------------

    def _near_lookup(self, caller: str, key: str) -> dict[str, Any] | None:
        """The caller's near-cached copy of ``key``, LRU-touched, or None."""
        cache = self._near.get(caller)
        if not cache:
            return None
        doc = cache.get(key)
        if doc is None:
            return None
        cache[key] = cache.pop(key)
        return doc

    def _near_install(self, caller: str | None, key: str, doc: dict[str, Any]) -> None:
        """Cache a remotely-fetched record on the caller (bounded LRU).

        Owners never near-cache: their partition memory is the
        authoritative copy already.
        """
        cap = self.model.near_cache_entries
        if not cap or caller is None or caller in self.owners(key):
            return
        cache = self._near.get(caller)
        if cache is None:
            return
        cache.pop(key, None)
        cache[key] = copy.deepcopy(doc)
        while len(cache) > cap:
            del cache[next(iter(cache))]
            self.near_evictions += 1

    def _near_invalidate(self, key: str) -> None:
        """Drop every near-cached copy of ``key`` (commit/delete)."""
        if not self.model.near_cache_entries:
            return
        for cache in self._near.values():
            if cache.pop(key, None) is not None:
                self.near_invalidations += 1

    # -- membership (elasticity + failures) -----------------------------------

    def add_node(self, node: str) -> dict[str, int]:
        """Join a node and rebalance ownership onto it."""
        self.ring.add_node(node)
        self._mem[node] = {}
        self._near[node] = {}
        if self.model.persistent:
            self._queues[node] = WriteBehindQueue(
                self.env,
                self.store,
                self.collection,
                self.model.write_behind,
                name=f"wb-{node}",
                tracer=self.tracer,
            )
        return self.rebalance()

    def fail_node(self, node: str) -> dict[str, int]:
        """Crash a node: its memory and *unflushed write-behind buffer*
        are lost; surviving replicas are re-spread over the new ring.

        Returns ``{"lost_pending": n, "keys_moved": m, ...}``.  Whether
        object state survives depends on the class runtime's
        configuration: replicated entries live on in other nodes'
        memory, persistent entries reload from the document store, and
        non-replicated ephemeral entries are simply gone — exactly the
        durability trade-off the templates encode.
        """
        if node not in self.ring:
            raise StorageError(f"node {node!r} is not a DHT member")
        if len(self.ring) == 1:
            raise StorageError("cannot fail the last DHT node")
        lost_pending = 0
        lost_fenced = None
        queue = self._queues.pop(node, None)
        if queue is not None:
            loss = queue.stop()
            lost_pending = loss["lost"]
            lost_fenced = loss.get("fenced")
        self._mem.pop(node, None)
        self._near.pop(node, None)
        self.ring.remove_node(node)
        if self._pins:
            # Pins to the dead node dissolve: ownership falls back to
            # the hash ring and rebalance reinstalls surviving copies.
            self._pins = {k: n for k, n in self._pins.items() if n != node}
        stats = self.rebalance()
        stats["lost_pending"] = lost_pending
        if lost_fenced is not None:
            stats["lost_fenced"] = lost_fenced
        return stats

    def rebalance(self) -> dict[str, int]:
        """Re-spread every surviving record per the current ring.

        Surviving copies are merged newest-version-wins, then installed
        on each key's current owner set.  Runs instantaneously — the
        experiments measure the *durability* consequences of membership
        change, not state-transfer bandwidth.
        """
        # Ownership is changing under every cached key — drop the near
        # caches wholesale rather than re-validating entry by entry.
        for cache in self._near.values():
            cache.clear()
        merged: dict[str, dict[str, Any]] = {}
        for node_mem in self._mem.values():
            for key, doc in node_mem.items():
                current = merged.get(key)
                if current is None or doc.get("version", 0) > current.get("version", 0):
                    merged[key] = doc
        moved = 0
        for node in self._mem:
            self._mem[node] = {}
        for key, doc in merged.items():
            for owner in self.owners(key):
                moved += 1
                self._mem[owner][key] = copy.deepcopy(doc)
        return {"keys_moved": moved, "keys_resident": len(merged)}

    # -- live migration (federation plane) -----------------------------------

    def pinned_node(self, key: str) -> str | None:
        """The node a key is pinned to by migration, or ``None``."""
        return self._pins.get(key)

    def pin_epoch(self, key: str) -> int:
        """The key's current migration epoch (0 = never migrated)."""
        return self._pin_epochs.get(key, 0)

    def prepare_migration(self, key: str) -> int:
        """Open a handoff: bump the key's migration epoch so every
        commit already in flight fences itself instead of installing on
        the old owner.  Returns the new epoch."""
        epoch = self._pin_epochs.get(key, 0) + 1
        self._pin_epochs[key] = epoch
        return epoch

    def best_resident(self, key: str) -> dict[str, Any] | None:
        """Newest in-memory copy of ``key`` across *all* nodes —
        replicas and stranded sloppy-quorum copies included.  Instant;
        part of the migration handoff's best-source selection."""
        best: dict[str, Any] | None = None
        for mem in self._mem.values():
            doc = mem.get(key)
            if doc is not None and (
                best is None or doc.get("version", 0) > best.get("version", 0)
            ):
                best = doc
        return copy.deepcopy(best) if best is not None else None

    def complete_migration(
        self, key: str, target: str, doc: dict[str, Any] | None
    ) -> None:
        """Atomically (no sim yields) repoint ownership of ``key`` to
        ``target``: pin it, drop copies outside the new owner set, and
        install the handoff copy version-guarded (never downgrading a
        newer resident copy)."""
        if target not in self.ring:
            raise StorageError(f"node {target!r} is not a DHT member")
        self._pins[key] = target
        owners = self.owners(key)
        for node, mem in self._mem.items():
            if node not in owners:
                mem.pop(key, None)
        if doc is not None:
            for node in owners:
                current = self._mem[node].get(key)
                if current is None or doc.get("version", 0) > current.get(
                    "version", 0
                ):
                    self._install(node, key, copy.deepcopy(doc))
        self._near_invalidate(key)

    def unpin(self, key: str) -> None:
        """Drop a migration pin; ownership falls back to the hash ring."""
        self._pins.pop(key, None)

    # -- durability (snapshot/restore plane) ---------------------------------

    def attach_durability(self, tracker) -> None:
        """Hook a durability tracker into the write path.

        Never called in the baseline; with no tracker attached the
        write/delete paths are unchanged."""
        self._durability = tracker

    def begin_cut(self) -> None:
        """Quiesce the write path for a consistent snapshot cut: every
        put/delete that arrives while the cut is open parks on a gate
        until :meth:`end_cut` fires it.  Reads are unaffected."""
        if self._cut_gate is not None:
            raise StorageError(f"collection {self.collection!r}: cut already open")
        self._cut_gate = Gate(self.env)

    def end_cut(self) -> None:
        """Release writers parked by :meth:`begin_cut`."""
        gate = self._cut_gate
        if gate is None:
            raise StorageError(f"collection {self.collection!r}: no cut open")
        self._cut_gate = None
        gate.fire()

    def fence_queues(self) -> None:
        """Open a snapshot fence on every node's write-behind queue."""
        for queue in self._queues.values():
            queue.begin_fence()

    def unfence_queues(self) -> None:
        for queue in self._queues.values():
            queue.end_fence()

    # -- maintenance ---------------------------------------------------------

    def flush_all(self) -> Process:
        """Drain every node's write-behind queue; resolves when durable."""
        return self.env.process(self._flush_all())

    def _flush_all(self) -> Generator:
        drains = [queue.drain() for queue in self._queues.values()]
        if drains:
            yield all_of(self.env, drains)

    def seed(self, doc: dict[str, Any], persist: bool = True) -> None:
        """Instantly install a record in memory (and, optionally, the
        document store) — experiment/fixture setup, bypassing all cost
        models.  Never use this on a measured code path."""
        key = doc.get("id")
        if not key:
            raise StorageError("cannot seed a document without 'id'")
        for node in self.owners(key):
            self._mem[node][key] = copy.deepcopy(doc)
        if persist and self.store is not None and self.model.persistent:
            self.store.put_sync(self.collection, doc)

    def purge(self, key: str) -> Process:
        """Remove a record from every node's memory and buffered queue,
        then durably delete it from the store — restore bookkeeping for
        objects that do not exist at the restore point.  Unlike
        :meth:`delete` it pays no data-plane network cost and does not
        notify the durability tracker."""
        return self.env.process(self._purge(key))

    def _purge(self, key: str) -> Generator:
        for mem in self._mem.values():
            mem.pop(key, None)
        self._near_invalidate(key)
        for queue in self._queues.values():
            queue.discard(key)
        if self.store is not None and self.model.persistent:
            yield self.store.delete(self.collection, key)

    def peek(self, key: str) -> dict[str, Any] | None:
        """Instant read of the primary's memory (tests/diagnostics)."""
        doc = self._mem[self.owner(key)].get(key)
        return copy.deepcopy(doc) if doc is not None else None

    def scan_ids(self) -> list[str]:
        """All object ids known to this cache: resident primaries plus
        (for persistent caches) everything in the document store.
        Instant — an admin/catalog operation, not a data-plane one."""
        ids = {
            key
            for node, mem in self._mem.items()
            for key in mem
            if self.owner(key) == node
        }
        if self.store is not None and self.model.persistent:
            ids.update(self.store.keys(self.collection))
            for queue in self._queues.values():
                ids.update(queue._buffer)
        return sorted(ids)

    def mem_count(self, node: str | None = None) -> int:
        """Records resident in memory on ``node`` (or primary copies total)."""
        if node is not None:
            return len(self._mem[node])
        return sum(1 for n in self._mem for k in self._mem[n] if self.owner(k) == n)

    def pending_writes(self) -> int:
        """Documents buffered but not yet flushed, across nodes."""
        return sum(queue.pending for queue in self._queues.values())

    @property
    def write_behind_stats(self) -> dict[str, int]:
        """Aggregated flusher statistics."""
        return {
            "enqueued": sum(q.enqueued for q in self._queues.values()),
            "coalesced": sum(q.coalesced for q in self._queues.values()),
            "flush_ops": sum(q.flush_ops for q in self._queues.values()),
            "docs_flushed": sum(q.docs_flushed for q in self._queues.values()),
            "blocked_enqueues": sum(q.blocked_enqueues for q in self._queues.values()),
            "flush_failures": sum(q.flush_failures for q in self._queues.values()),
            "pending": sum(q.pending for q in self._queues.values()),
        }

    @property
    def read_path_stats(self) -> dict[str, int]:
        """Aggregated read-path statistics (coalescing/batching/near cache)."""
        stats = {
            "read_coalesced": self.read_coalesced,
            "near_hits": self.near_hits,
            "near_evictions": self.near_evictions,
            "near_invalidations": self.near_invalidations,
            "near_resident": sum(len(c) for c in self._near.values()),
            "batched_reads": 0,
            "batch_ops": 0,
            "batch_deduplicated": 0,
        }
        if self._read_batcher is not None:
            stats["batched_reads"] = self._read_batcher.requested
            stats["batch_ops"] = self._read_batcher.batch_ops
            stats["batch_deduplicated"] = self._read_batcher.deduplicated
        return stats

    def collect_metrics(self, registry, labels: dict[str, str]) -> None:
        """Metrics-plane pull hook: mirror read-path and write-behind
        statistics into labeled registry instruments.  Never called on a
        baseline platform (the plane registers collectors only when
        enabled), so the data path stays untouched."""
        from repro.monitoring.plane import set_counter

        set_counter(registry, "dht.gets", float(self.gets), labels)
        set_counter(registry, "dht.puts", float(self.puts), labels)
        set_counter(registry, "dht.mem_hits", float(self.mem_hits), labels)
        set_counter(registry, "dht.mem_misses", float(self.mem_misses), labels)
        set_counter(registry, "dht.stale_reads", float(self.stale_reads), labels)
        registry.gauge("dht.pending_writes", labels).set(float(self.pending_writes()))
        read_path = self.read_path_stats
        for key in ("read_coalesced", "near_hits", "batched_reads", "batch_ops"):
            set_counter(registry, f"readpath.{key}", float(read_path[key]), labels)
        registry.gauge("readpath.near_resident", labels).set(
            float(read_path["near_resident"])
        )
        write_behind = self.write_behind_stats
        for key in ("enqueued", "coalesced", "flush_ops", "docs_flushed", "flush_failures"):
            set_counter(
                registry, f"write_behind.{key}", float(write_behind[key]), labels
            )
        registry.gauge("write_behind.pending", labels).set(
            float(write_behind["pending"])
        )

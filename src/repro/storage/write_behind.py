"""Write-behind batching from the in-memory tier to the document store.

Updates enqueue instantly (the in-memory tier has already accepted
them); a background flusher groups them into batches and writes each
batch as a single DB operation.  Two effects raise the effective DB
ceiling, both from the paper's §V explanation of Fig. 3:

* **batching** — the DB's fixed per-operation cost is amortized over
  ``batch_size`` documents;
* **coalescing** — multiple updates to the same object within one flush
  window collapse into the latest version (last-write-wins), so hot
  objects cost one DB write per window regardless of update rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator

from repro.errors import StorageError
from repro.monitoring.tracing import Tracer
from repro.sim.kernel import Environment, Process
from repro.sim.resources import Gate
from repro.storage.kv import DocumentStore

#: All write-behind flush spans share one synthetic trace: flushes are
#: background work not attributable to any single request.
FLUSH_TRACE_ID = "write-behind"

__all__ = ["WriteBehindConfig", "WriteBehindQueue"]


@dataclass(frozen=True)
class WriteBehindConfig:
    """Tuning knobs for the flusher (the ABL-BATCH ablation sweeps these).

    Attributes:
        batch_size: maximum documents per DB write operation.
        linger_s: how long the flusher waits after waking to let a batch
            accumulate before writing.  Zero flushes eagerly.
        max_pending: buffered-document bound per queue.  When the DB
            cannot keep up, enqueues *block* until the flusher drains —
            the backpressure that ties the in-memory tier's accept rate
            to the database's sustainable write rate.  Updates that
            coalesce into an already-buffered document never block.
        retry_backoff_s: initial delay before retrying a failed flush
            (store write errors); doubles per consecutive failure.
        max_retry_backoff_s: cap on the flush retry delay.  A batch is
            retried indefinitely — accepted writes are never dropped on
            transient store faults — so durability is preserved across
            bounded fault windows.
    """

    batch_size: int = 100
    linger_s: float = 0.02
    max_pending: int = 2000
    retry_backoff_s: float = 0.05
    max_retry_backoff_s: float = 2.0

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise StorageError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.linger_s < 0:
            raise StorageError(f"linger_s must be >= 0, got {self.linger_s}")
        if self.max_pending < self.batch_size:
            raise StorageError(
                f"max_pending ({self.max_pending}) must be >= batch_size "
                f"({self.batch_size})"
            )
        if self.retry_backoff_s <= 0:
            raise StorageError(
                f"retry_backoff_s must be > 0, got {self.retry_backoff_s}"
            )
        if self.max_retry_backoff_s < self.retry_backoff_s:
            raise StorageError(
                f"max_retry_backoff_s ({self.max_retry_backoff_s}) must be >= "
                f"retry_backoff_s ({self.retry_backoff_s})"
            )


class WriteBehindQueue:
    """A coalescing buffer with a background flusher process."""

    def __init__(
        self,
        env: Environment,
        store: DocumentStore,
        collection: str,
        config: WriteBehindConfig | None = None,
        name: str = "wb",
        tracer: Tracer | None = None,
    ) -> None:
        self.env = env
        self.store = store
        self.collection = collection
        self.config = config or WriteBehindConfig()
        self.name = name
        self.tracer = tracer
        self._buffer: dict[str, dict[str, Any]] = {}
        #: The batch currently popped by the flusher and not yet durable
        #: (in the store write or the retry-backoff loop).  Tracked so a
        #: node crash counts it in the loss report and a delete can
        #: discard it before a retry resurrects the document.
        self._inflight: list[dict[str, Any]] | None = None
        self._arrival = Gate(env)
        self._space = Gate(env)
        #: Fired by the flusher whenever buffer and in-flight batch are
        #: both empty — what :meth:`drain` waits on.
        self._idle = Gate(env)
        self._drain_requested = 0
        #: Depth of active snapshot fences (see :meth:`begin_fence`).
        self._fence_depth = 0
        #: Batches the flusher popped while a fence was active.  A
        #: consistent cut must not split a batch, so the coordinator
        #: fences the queue, drains it, and counts any batch in flight
        #: at crash time exactly once via the ``fenced`` report key.
        self.fenced_batches = 0
        self.enqueued = 0
        self.coalesced = 0
        self.flush_ops = 0
        self.docs_flushed = 0
        self.blocked_enqueues = 0
        self.flush_failures = 0
        self._running = True
        self._flusher = env.process(self._run())

    @property
    def pending(self) -> int:
        """Documents currently buffered (per distinct object)."""
        return len(self._buffer)

    def enqueue(self, doc: dict[str, Any]) -> None:
        """Buffer one updated document for eventual persistence.

        Non-blocking variant: use :meth:`enqueue_blocking` on hot write
        paths so backpressure applies.
        """
        key = doc.get("id")
        if not key:
            raise StorageError("write-behind document without 'id'")
        self.enqueued += 1
        if key in self._buffer:
            self.coalesced += 1
        was_empty = not self._buffer
        self._buffer[key] = doc
        if was_empty:
            self._arrival.fire()

    def enqueue_blocking(self, doc: dict[str, Any]) -> Generator:
        """Buffer a document, waiting while the buffer is at capacity.

        A coalescing update (same id already buffered) never waits.
        """
        key = doc.get("id")
        if not key:
            raise StorageError("write-behind document without 'id'")
        while key not in self._buffer and len(self._buffer) >= self.config.max_pending:
            self.blocked_enqueues += 1
            yield self._space.wait()
        self.enqueue(doc)

    def discard(self, key: str) -> bool:
        """Drop a buffered update (object deletion); True if present.

        Also removes the document from the batch the flusher currently
        holds (in place, so a pending retry observes the removal) — a
        retried batch must not resurrect a deleted object either.
        """
        found = False
        if key in self._buffer:
            del self._buffer[key]
            self._space.fire()
            found = True
        if self._inflight:
            kept = [doc for doc in self._inflight if doc.get("id") != key]
            if len(kept) != len(self._inflight):
                self._inflight[:] = kept
                found = True
        return found

    def _take_batch(self) -> list[dict[str, Any]]:
        keys = list(self._buffer)[: self.config.batch_size]
        return [self._buffer.pop(k) for k in keys]

    def begin_fence(self) -> None:
        """Mark the start of a snapshot cut over this queue.

        While fenced, batches the flusher pops are counted in
        :attr:`fenced_batches`, and :meth:`stop` reports any batch still
        in flight under a ``fenced`` key so the cut's loss accounting
        can attribute it exactly once.  Fences nest (coordinator per
        owner node × replicated keys)."""
        self._fence_depth += 1

    def end_fence(self) -> None:
        if self._fence_depth <= 0:
            raise StorageError("end_fence without matching begin_fence")
        self._fence_depth -= 1

    def stop(self) -> dict[str, int]:
        """Stop the flusher (node failure); buffered documents are LOST.

        Returns ``{"lost": n}`` — the durability gap a crash opens when
        write-behind batching is in play.  The count covers both the
        buffer and the batch the flusher currently holds in its flush /
        retry loop: under store write faults that batch never commits,
        so including it makes the loss report exact.  (In the rare race
        where the crash lands while a *healthy* store write is mid-air,
        the batch still commits and the report is conservative by one
        batch.)
        """
        self._running = False
        inflight = len(self._inflight) if self._inflight else 0
        lost = len(self._buffer) + inflight
        self._buffer.clear()
        self._inflight = None
        self._arrival.fire()
        self._idle.fire()
        report = {"lost": lost}
        if self._fence_depth > 0:
            # A crash during a snapshot cut: the in-flight batch was
            # fenced by the coordinator, so report it separately (once)
            # for the cut's loss accounting.  The plain report shape is
            # unchanged outside a fence.
            report["fenced"] = inflight
        return report

    def _run(self) -> Generator:
        while self._running:
            if not self._buffer:
                if self._inflight is None:
                    self._idle.fire()
                yield self._arrival.wait()
                if not self._running:
                    return
                continue
            if (
                len(self._buffer) < self.config.batch_size
                and self.config.linger_s > 0
                and not self._drain_requested
            ):
                yield self.env.timeout(self.config.linger_s)
            batch = self._take_batch()
            if batch:
                if self._fence_depth:
                    self.fenced_batches += 1
                yield from self._flush(batch)

    def drain(self) -> Process:
        """Flush everything currently buffered; resolves when durable.

        Routed through the flusher process rather than writing directly:
        a concurrent direct write could race a batch the flusher popped
        before a store fault, letting the retried (older) batch overwrite
        the newer version at the store.  With a single writer, batches
        always land in pop order and last-write-wins is preserved.  A
        drain that arrives while the flusher lingers waits that linger
        out (at most ``linger_s``) before flushing proceeds.
        """
        return self.env.process(self._drain())

    def _drain(self) -> Generator:
        while self._running and (self._buffer or self._inflight is not None):
            self._drain_requested += 1
            self._arrival.fire()
            try:
                yield self._idle.wait()
            finally:
                self._drain_requested -= 1

    def _flush(self, batch: list[dict[str, Any]]) -> Generator:
        """Write one batch to the store, traced when tracing is on.

        Store write faults do not lose the batch: the flush is retried
        in place with capped exponential backoff until the store
        recovers (or the queue is stopped by a node crash, which counts
        the batch as lost in :meth:`stop`'s report).
        """
        self._inflight = batch
        backoff = self.config.retry_backoff_s
        while True:
            if not self._running:
                return
            if not batch:
                # Everything in the batch was discarded (deleted) while
                # we were retrying — nothing left to persist.
                self._inflight = None
                return
            span = None
            if self.tracer is not None and self.tracer.enabled:
                span = self.tracer.start(
                    FLUSH_TRACE_ID, "wb.flush", queue=self.name, docs=len(batch)
                )
            try:
                yield self.store.write(self.collection, batch)
            except StorageError as exc:
                self.flush_failures += 1
                if span is not None:
                    self.tracer.finish(span, ok=False, error=str(exc))
                if not self._running:
                    return
                yield self.env.timeout(backoff)
                backoff = min(backoff * 2, self.config.max_retry_backoff_s)
                continue
            if span is not None:
                self.tracer.finish(span)
            if not self._running:
                # Crash raced a successful commit: the data is durable,
                # but the node is gone — skip post-flush bookkeeping.
                return
            self._inflight = None
            self.flush_ops += 1
            self.docs_flushed += len(batch)
            self._space.fire()
            return

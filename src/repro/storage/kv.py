"""Persistent document store — the shared database substrate.

Models the external database every system in Fig. 3 ultimately writes
to.  Capacity is expressed in abstract *work units* served at a fixed
aggregate rate: a write of ``k`` documents costs ``op_cost + k *
doc_cost`` units.  The fixed per-operation cost is what makes batched
writes cheaper per document — the mechanism the paper credits for
Oparaca's higher throughput ceiling ("consolidate data for batch write
operations", §V).

All mutations are applied when their simulated service completes, so a
read issued after a write's completion event observes it.

The store owns *when* storage work completes — work units, the rate
limiter, chaos fault injection, defensive copies.  *Where* documents
live is delegated to a pluggable :class:`~repro.storage.backends.base.
StoreBackend`: the default dict engine (byte-identical to the
historical in-memory store) or SQLite (durable files with keySpec
secondary indexes).  Because faults are raised here, after units are
consumed but before the backend is touched, fault semantics are
uniform across engines by construction.
"""

from __future__ import annotations

import copy
import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Generator, Mapping

from repro.errors import StorageError
from repro.sim.kernel import Environment, Process
from repro.sim.resources import RateLimiter
from repro.storage.backends.memory import DictBackend

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.model.types import DataType
    from repro.storage.backends.base import StoreBackend
    from repro.storage.query import Query

__all__ = ["DbModel", "DocumentStore"]


@dataclass(frozen=True)
class DbModel:
    """Service model of the document store.

    Attributes:
        capacity_units_per_s: aggregate work-unit service rate.  This is
            the cluster-wide ceiling that produces the Knative plateau
            in Fig. 3; it deliberately does *not* grow with worker VMs
            (the DB is a separate, fixed-size service).
        op_cost: fixed units per operation (round trip, commit, index).
        doc_cost: units per document written.
        read_cost: units per document read.
    """

    capacity_units_per_s: float = 5000.0
    op_cost: float = 4.0
    doc_cost: float = 1.0
    read_cost: float = 1.0

    def write_units(self, docs: int) -> float:
        return self.op_cost + docs * self.doc_cost

    def read_units(self, docs: int = 1) -> float:
        return self.op_cost + docs * self.read_cost


class DocumentStore:
    """A collection-oriented document database with a throughput ceiling."""

    def __init__(
        self,
        env: Environment,
        model: DbModel | None = None,
        backend: "StoreBackend | None" = None,
    ) -> None:
        self.env = env
        self.model = model or DbModel()
        self.backend = backend if backend is not None else DictBackend()
        self._limiter = RateLimiter(env, self.model.capacity_units_per_s)
        self._units_by_collection: dict[str, float] = {}
        self.write_ops = 0
        self.docs_written = 0
        self.read_ops = 0
        self.docs_read = 0
        self.multi_read_ops = 0
        self.query_ops = 0
        self.query_docs_scanned = 0
        # Chaos-plane write-fault injection; rate 0.0 = healthy (default).
        self._write_fault_rate = 0.0
        self._fault_rng: random.Random | None = None
        self.faulted_writes = 0

    @property
    def durable(self) -> bool:
        """True when the engine's documents survive process death."""
        return self.backend.durable

    def register_schema(
        self, collection: str, schema: "Mapping[str, DataType]"
    ) -> None:
        """Declare a collection's typed state keys so the engine can
        build secondary indexes over them (deploy-time hook)."""
        self.backend.register_schema(collection, schema)

    def close(self) -> None:
        """Release engine resources (connections, file handles)."""
        self.backend.close()

    # -- fault injection (chaos plane) -------------------------------------

    def set_write_fault(self, rate: float, rng: random.Random | None = None) -> None:
        """Make write operations fail with probability ``rate``.

        Failures surface as :class:`StorageError` *after* the operation
        has consumed its work units (the DB did the work, the commit
        failed) and before the engine is touched, so no engine observes
        a partially applied faulted batch.  With no ``rng``, any
        positive rate fails every write.
        """
        if not 0.0 <= rate <= 1.0:
            raise StorageError(f"write fault rate must be in [0, 1], got {rate}")
        self._write_fault_rate = rate
        self._fault_rng = rng

    def clear_write_fault(self) -> None:
        self._write_fault_rate = 0.0
        self._fault_rng = None

    def _maybe_fail_write(self, collection: str) -> None:
        if not self._write_fault_rate:
            return
        roll = self._fault_rng.random() if self._fault_rng is not None else 0.0
        if roll < self._write_fault_rate:
            self.faulted_writes += 1
            raise StorageError(f"injected write fault on collection {collection!r}")

    # -- timed operations (data plane) ------------------------------------

    def write(self, collection: str, docs: list[Mapping[str, Any]]) -> Process:
        """Durably write ``docs`` (upsert by ``id``).  Returns a process
        event that fires once the DB has committed the batch."""
        for doc in docs:
            if "id" not in doc:
                raise StorageError(f"document without 'id' in write to {collection!r}")
        return self.env.process(self._write(collection, [copy.deepcopy(dict(d)) for d in docs]))

    def _write(self, collection: str, docs: list[dict[str, Any]]) -> Generator:
        # An empty batch consumes no work units and must not count as an
        # operation either, or flush_ops-per-doc accounting is skewed.
        if not docs:
            return 0
        units = self.model.write_units(len(docs))
        self._units_by_collection[collection] = (
            self._units_by_collection.get(collection, 0.0) + units
        )
        yield self._limiter.acquire(units)
        self._maybe_fail_write(collection)
        self.backend.put_many(collection, docs)
        self.write_ops += 1
        self.docs_written += len(docs)
        return len(docs)

    def read(self, collection: str, key: str) -> Process:
        """Read one document; the process resolves to the doc or ``None``."""
        return self.env.process(self._read(collection, key))

    def _read(self, collection: str, key: str) -> Generator:
        units = self.model.read_units(1)
        self._units_by_collection[collection] = (
            self._units_by_collection.get(collection, 0.0) + units
        )
        yield self._limiter.acquire(units)
        self.read_ops += 1
        doc = self.backend.get(collection, key)
        if doc is not None:
            self.docs_read += 1
            return copy.deepcopy(doc)
        return None

    def read_many(self, collection: str, keys: list[str]) -> Process:
        """Read a batch of documents as ONE operation (multi-get).

        Costs ``op_cost + k * read_cost`` work units — the read-side
        mirror of :meth:`~DbModel.write_units` batching — so ``k`` misses
        coalesced into one window amortize the fixed per-operation cost
        the same way the write-behind flusher does.  The process resolves
        to ``{key: doc}`` with absent keys mapped to ``None``.
        """
        return self.env.process(self._read_many(collection, list(keys)))

    def _read_many(self, collection: str, keys: list[str]) -> Generator:
        if not keys:
            return {}
        units = self.model.read_units(len(keys))
        self._units_by_collection[collection] = (
            self._units_by_collection.get(collection, 0.0) + units
        )
        yield self._limiter.acquire(units)
        self.read_ops += 1
        self.multi_read_ops += 1
        out: dict[str, Any] = {}
        for key in keys:
            doc = self.backend.get(collection, key)
            if doc is not None:
                self.docs_read += 1
                out[key] = copy.deepcopy(doc)
            else:
                out[key] = None
        return out

    def delete(self, collection: str, key: str) -> Process:
        """Delete one document (no-op if absent)."""
        return self.env.process(self._delete(collection, key))

    def _delete(self, collection: str, key: str) -> Generator:
        units = self.model.write_units(1)
        self._units_by_collection[collection] = (
            self._units_by_collection.get(collection, 0.0) + units
        )
        yield self._limiter.acquire(units)
        self.write_ops += 1
        self.backend.delete(collection, key)

    def query(self, collection: str, query: "Query") -> Process:
        """Run a typed query; the process resolves to a
        :class:`~repro.storage.query.QueryResult`.

        Cost is two-phase and deterministic: the fixed ``op_cost`` is
        charged up front (the round trip), then ``scanned * read_cost``
        once the engine reports how many documents the plan actually
        examined — an indexed range query over few matches is cheap, a
        full scan of a large collection is priced like the multi-get
        that it is.
        """
        return self.env.process(self._query(collection, query))

    def _query(self, collection: str, query: "Query") -> Generator:
        units = self.model.op_cost
        self._units_by_collection[collection] = (
            self._units_by_collection.get(collection, 0.0) + units
        )
        yield self._limiter.acquire(units)
        result = self.backend.query(collection, query)
        scan_units = result.scanned * self.model.read_cost
        if scan_units > 0:
            self._units_by_collection[collection] += scan_units
            yield self._limiter.acquire(scan_units)
        self.query_ops += 1
        self.query_docs_scanned += result.scanned
        result.docs = [copy.deepcopy(doc) for doc in result.docs]
        return result

    # -- instant inspection (control plane / tests) ------------------------

    def get_sync(self, collection: str, key: str) -> dict[str, Any] | None:
        """Read without consuming DB capacity (tests and bookkeeping)."""
        doc = self.backend.get(collection, key)
        return copy.deepcopy(doc) if doc is not None else None

    def put_sync(self, collection: str, doc: Mapping[str, Any]) -> None:
        """Seed a document without consuming DB capacity."""
        if "id" not in doc:
            raise StorageError("document without 'id'")
        self.backend.put(collection, dict(doc))

    def units_for(self, collection: str) -> float:
        """Cumulative work units this collection has consumed (billing)."""
        return self._units_by_collection.get(collection, 0.0)

    def count(self, collection: str) -> int:
        return self.backend.count(collection)

    def keys(self, collection: str) -> list[str]:
        return self.backend.keys(collection)

    @property
    def backlog_seconds(self) -> float:
        """Current write-path backlog (queueing delay) in seconds."""
        return self._limiter.backlog_seconds

    def utilization(self, elapsed: float) -> float:
        return self._limiter.utilization(elapsed)

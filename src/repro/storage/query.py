"""Typed query layer over the store backends.

A :class:`Query` is a conjunction of typed predicates over a class's
declared ``keySpecs`` (§III-B: the platform, not the application, owns
structured state — so the platform can index and query it), plus
ordering, a limit, and keyset-cursor pagination.  The grammar is small
on purpose: equality, ranges, and string prefixes are exactly what a
secondary index can answer without a planner.

``where`` grammar (comma-separated conjunction)::

    field==value   field=value    equality
    field<value    field<=value   range
    field>value    field>=value   range
    field^=value   string prefix (STR keys)

Values are coerced by the key's declared :class:`~repro.model.types.
DataType`; ``order`` is ``field`` or ``field:desc``; ``cursor`` is the
opaque token returned by the previous page.

Evaluation semantics are identical across engines (the conformance
tests hold both to them):

* a predicate on a key the document does not carry never matches;
* ordered queries return only documents carrying the order key;
* ties (and unordered results) break by object id, ascending with the
  sort direction, so pagination is deterministic.
"""

from __future__ import annotations

import base64
import binascii
import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.errors import QueryError
from repro.model.types import DataType

__all__ = [
    "Predicate",
    "Query",
    "QueryResult",
    "parse_query",
    "parse_where",
    "evaluate_query",
    "encode_cursor",
    "decode_cursor",
]

#: Operator token -> canonical op name, longest tokens first so the
#: scanner never splits ``<=`` into ``<`` + ``=``.
_OPS = (
    ("==", "eq"),
    ("<=", "le"),
    (">=", "ge"),
    ("^=", "prefix"),
    ("=", "eq"),
    ("<", "lt"),
    (">", "gt"),
)

_RANGE_OPS = {"lt", "le", "gt", "ge"}


@dataclass(frozen=True)
class Predicate:
    """One typed comparison against a declared state key."""

    key: str
    op: str  # eq | lt | le | gt | ge | prefix
    value: Any


@dataclass(frozen=True)
class Query:
    """A conjunctive query with ordering and keyset pagination."""

    where: tuple[Predicate, ...] = ()
    order_by: str | None = None
    descending: bool = False
    limit: int | None = None
    #: Decoded keyset cursor: ``(order_value, id)`` for ordered queries,
    #: ``(id,)`` otherwise.  ``None`` = first page.
    cursor: tuple | None = None


@dataclass
class QueryResult:
    """What a backend's ``query`` resolves to."""

    docs: list[dict[str, Any]] = field(default_factory=list)
    #: Documents the engine had to examine — what the operation is
    #: billed for.  A secondary index scans fewer than a full scan.
    scanned: int = 0
    index_used: bool = False
    plan: str = ""
    next_cursor: str | None = None


# -- parsing -----------------------------------------------------------------


def _coerce(raw: str, dtype: DataType, key: str) -> Any:
    try:
        if dtype is DataType.INT:
            return int(raw)
        if dtype is DataType.FLOAT:
            return float(raw)
        if dtype is DataType.BOOL:
            token = raw.strip().lower()
            if token in ("true", "1"):
                return True
            if token in ("false", "0"):
                return False
            raise ValueError(raw)
        if dtype is DataType.JSON:
            try:
                return json.loads(raw)
            except json.JSONDecodeError:
                return raw
        return raw  # STR
    except (TypeError, ValueError):
        raise QueryError(
            f"value {raw!r} is not a valid {dtype.value} for key {key!r}"
        ) from None


def parse_where(text: str, schema: Mapping[str, DataType]) -> tuple[Predicate, ...]:
    """Parse a ``where`` expression against a class's key schema."""
    predicates: list[Predicate] = []
    for clause in text.split(","):
        clause = clause.strip()
        if not clause:
            continue
        for token, op in _OPS:
            split_at = clause.find(token)
            if split_at > 0:
                key, raw = clause[:split_at].strip(), clause[split_at + len(token):].strip()
                break
        else:
            raise QueryError(
                f"cannot parse predicate {clause!r}; expected field<op>value "
                "with op one of ==, <, <=, >, >=, ^="
            )
        dtype = schema.get(key)
        if dtype is None:
            raise QueryError(
                f"unknown query key {key!r}; queryable keys: {sorted(schema)}"
            )
        if op == "prefix" and dtype is not DataType.STR:
            raise QueryError(
                f"prefix match (^=) requires a STR key; {key!r} is {dtype.value}"
            )
        predicates.append(Predicate(key, op, _coerce(raw, dtype, key)))
    return tuple(predicates)


def parse_query(params: Mapping[str, str], schema: Mapping[str, DataType]) -> Query:
    """Build a :class:`Query` from decoded HTTP query parameters."""
    known = {"where", "order", "limit", "cursor", "explain"}
    unknown = sorted(set(params) - known)
    if unknown:
        raise QueryError(f"unknown query parameter(s) {unknown}; expected {sorted(known)}")
    where = parse_where(params.get("where", ""), schema)
    order_by: str | None = None
    descending = False
    order = params.get("order", "").strip()
    if order:
        order_by, _, direction = order.partition(":")
        order_by = order_by.strip()
        if order_by not in schema:
            raise QueryError(
                f"unknown order key {order_by!r}; queryable keys: {sorted(schema)}"
            )
        direction = direction.strip().lower()
        if direction not in ("", "asc", "desc"):
            raise QueryError(f"order direction must be asc or desc, got {direction!r}")
        descending = direction == "desc"
    limit: int | None = None
    if params.get("limit", "").strip():
        try:
            limit = int(params["limit"])
        except ValueError:
            raise QueryError(f"limit must be an integer, got {params['limit']!r}") from None
        if limit < 1:
            raise QueryError(f"limit must be >= 1, got {limit}")
    query = Query(where=where, order_by=order_by, descending=descending, limit=limit)
    cursor_text = params.get("cursor", "").strip()
    if cursor_text:
        query = Query(
            where=where,
            order_by=order_by,
            descending=descending,
            limit=limit,
            cursor=decode_cursor(cursor_text, order_by),
        )
    return query


# -- cursors -----------------------------------------------------------------


def encode_cursor(doc: Mapping[str, Any], order_by: str | None) -> str:
    """Keyset token for the page ending at ``doc``."""
    if order_by is None:
        payload: list[Any] = [doc["id"]]
    else:
        payload = [(doc.get("state") or {}).get(order_by), doc["id"]]
    raw = json.dumps(payload, separators=(",", ":"), default=str).encode("utf-8")
    return base64.urlsafe_b64encode(raw).decode("ascii")


def decode_cursor(text: str, order_by: str | None) -> tuple:
    try:
        payload = json.loads(base64.urlsafe_b64decode(text.encode("ascii")))
    except (ValueError, binascii.Error):
        raise QueryError(f"malformed cursor {text!r}") from None
    expected = 1 if order_by is None else 2
    if not isinstance(payload, list) or len(payload) != expected:
        raise QueryError(
            f"cursor {text!r} does not match this query's ordering"
        )
    return tuple(payload)


# -- evaluation (dict engine + ephemeral in-memory fallback) -----------------


def _matches(doc: Mapping[str, Any], pred: Predicate) -> bool:
    value = (doc.get("state") or {}).get(pred.key)
    if value is None:
        return False
    if pred.op == "eq":
        return bool(value == pred.value)
    if pred.op == "prefix":
        return isinstance(value, str) and value.startswith(pred.value)
    try:
        if pred.op == "lt":
            return bool(value < pred.value)
        if pred.op == "le":
            return bool(value <= pred.value)
        if pred.op == "gt":
            return bool(value > pred.value)
        return bool(value >= pred.value)
    except TypeError:
        return False


def _after_cursor(doc: Mapping[str, Any], query: Query) -> bool:
    """Keyset position test: is ``doc`` strictly past the cursor?"""
    assert query.cursor is not None
    if query.order_by is None:
        return doc["id"] > query.cursor[0]
    value = (doc.get("state") or {}).get(query.order_by)
    cursor_value, cursor_id = query.cursor
    try:
        if value == cursor_value:
            return (doc["id"] < cursor_id) if query.descending else (doc["id"] > cursor_id)
        if query.descending:
            return bool(value < cursor_value)
        return bool(value > cursor_value)
    except TypeError:
        return False


def evaluate_query(
    docs: Iterable[Mapping[str, Any]], query: Query, plan: str = "full-scan"
) -> QueryResult:
    """Reference evaluation over plain documents (no index).

    The dict engine and the ephemeral in-memory fallback both run this,
    so their semantics cannot drift from each other; the SQLite engine's
    conformance tests hold its compiled SQL to the same results.
    """
    scanned = 0
    matched: list[dict[str, Any]] = []
    for doc in docs:
        scanned += 1
        if query.order_by is not None and (doc.get("state") or {}).get(query.order_by) is None:
            continue
        if all(_matches(doc, pred) for pred in query.where):
            matched.append(dict(doc))
    if query.order_by is None:
        matched.sort(key=lambda d: d["id"])
    else:
        matched.sort(
            key=lambda d: ((d.get("state") or {})[query.order_by], d["id"]),
            reverse=query.descending,
        )
    if query.cursor is not None:
        matched = [doc for doc in matched if _after_cursor(doc, query)]
    next_cursor = None
    if query.limit is not None and len(matched) > query.limit:
        matched = matched[: query.limit]
        next_cursor = encode_cursor(matched[-1], query.order_by)
    return QueryResult(
        docs=matched,
        scanned=scanned,
        index_used=False,
        plan=plan,
        next_cursor=next_cursor,
    )

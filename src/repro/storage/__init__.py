"""Storage substrates: structured state (DHT + document store) and
unstructured state (S3-style object store)."""

from repro.storage.dht import Dht, DhtModel
from repro.storage.hashring import HashRing
from repro.storage.kv import DbModel, DocumentStore
from repro.storage.object_store import ObjectStore, ObjectStoreModel, PresignedUrl, StoredObject
from repro.storage.write_behind import WriteBehindConfig, WriteBehindQueue

__all__ = [
    "Dht",
    "DhtModel",
    "HashRing",
    "DbModel",
    "DocumentStore",
    "ObjectStore",
    "ObjectStoreModel",
    "PresignedUrl",
    "StoredObject",
    "WriteBehindConfig",
    "WriteBehindQueue",
]

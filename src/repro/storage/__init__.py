"""Storage substrates: structured state (DHT + document store over a
pluggable backend engine) and unstructured state (S3-style object
store)."""

from repro.storage.backends import (
    DictBackend,
    SqliteBackend,
    StorageConfig,
    StoreBackend,
    make_backend,
)
from repro.storage.dht import Dht, DhtModel
from repro.storage.hashring import HashRing
from repro.storage.kv import DbModel, DocumentStore
from repro.storage.object_store import ObjectStore, ObjectStoreModel, PresignedUrl, StoredObject
from repro.storage.query import Predicate, Query, QueryResult, parse_query
from repro.storage.write_behind import WriteBehindConfig, WriteBehindQueue

__all__ = [
    "Dht",
    "DhtModel",
    "DictBackend",
    "HashRing",
    "DbModel",
    "DocumentStore",
    "ObjectStore",
    "ObjectStoreModel",
    "Predicate",
    "PresignedUrl",
    "Query",
    "QueryResult",
    "SqliteBackend",
    "StorageConfig",
    "StoreBackend",
    "StoredObject",
    "WriteBehindConfig",
    "WriteBehindQueue",
    "make_backend",
    "parse_query",
]

"""S3-protocol object storage for unstructured state (paper §III-D).

FILE-typed state keys live here, not in the structured tier.  The store
implements the parts of the S3 protocol the platform relies on:
buckets, object put/get/delete, and **presigned URLs** — HMAC-signed,
expiring URLs that let developer code access exactly one object without
ever holding the store's secret key ("presigned URL technique ...
without sharing the secret key and avoiding leaking sensitive
information").

Timed variants model transfer cost so the ABL-PRESIGN ablation can
compare the direct (presigned) data path against proxying bytes through
the platform.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Generator
from urllib.parse import parse_qs, quote, unquote, urlparse

from repro.errors import BucketNotFoundError, KeyNotFoundError, PresignedUrlError, StorageError
from repro.sim.kernel import Environment, Process

__all__ = ["ObjectStoreModel", "StoredObject", "ObjectStore", "PresignedUrl"]


@dataclass(frozen=True)
class ObjectStoreModel:
    """Service model: per-operation latency plus serialization time."""

    op_latency_s: float = 0.0008
    bandwidth_bps: float = 2.5e8  # ~2 Gbit/s per stream

    def transfer_time(self, nbytes: int) -> float:
        base = self.op_latency_s
        if self.bandwidth_bps:
            base += nbytes / self.bandwidth_bps
        return base


@dataclass(frozen=True)
class StoredObject:
    """An object version at rest."""

    bucket: str
    key: str
    data: bytes
    content_type: str = "application/octet-stream"
    etag: str = ""

    @property
    def size(self) -> int:
        return len(self.data)


@dataclass(frozen=True)
class PresignedUrl:
    """A parsed presigned URL."""

    bucket: str
    key: str
    method: str
    expires_at: float
    signature: str

    def render(self) -> str:
        # The key is percent-encoded with no safe characters so that
        # slashes (including leading ones) and URL metacharacters
        # round-trip exactly.
        return (
            f"s3://{self.bucket}/{quote(self.key, safe='')}"
            f"?method={self.method}&expires={self.expires_at!r}"
            f"&signature={self.signature}"
        )

    @classmethod
    def parse(cls, url: str) -> "PresignedUrl":
        parsed = urlparse(url)
        if parsed.scheme != "s3" or not parsed.netloc:
            raise PresignedUrlError(f"malformed presigned URL: {url!r}")
        query = parse_qs(parsed.query)
        path = parsed.path[1:] if parsed.path.startswith("/") else parsed.path
        try:
            return cls(
                bucket=parsed.netloc,
                key=unquote(path),
                method=query["method"][0],
                expires_at=float(query["expires"][0]),
                signature=query["signature"][0],
            )
        except (KeyError, IndexError, ValueError) as exc:
            raise PresignedUrlError(f"malformed presigned URL: {url!r}") from exc


class ObjectStore:
    """An S3-like object store with presigned access."""

    def __init__(
        self,
        env: Environment,
        model: ObjectStoreModel | None = None,
        secret_key: bytes = b"oparaca-dev-secret",
    ) -> None:
        self.env = env
        self.model = model or ObjectStoreModel()
        self._secret = secret_key
        self._buckets: dict[str, dict[str, StoredObject]] = {}
        self.put_ops = 0
        self.get_ops = 0
        self.bytes_in = 0
        self.bytes_out = 0
        self.presigned_issued = 0
        self.presigned_used = 0

    # -- buckets -----------------------------------------------------------

    def create_bucket(self, bucket: str) -> None:
        if not bucket:
            raise StorageError("bucket name must be non-empty")
        self._buckets.setdefault(bucket, {})

    def bucket_exists(self, bucket: str) -> bool:
        return bucket in self._buckets

    def _table(self, bucket: str) -> dict[str, StoredObject]:
        table = self._buckets.get(bucket)
        if table is None:
            raise BucketNotFoundError(f"no bucket {bucket!r}")
        return table

    # -- instant (authenticated) operations ---------------------------------

    def put_object(
        self, bucket: str, key: str, data: bytes, content_type: str = "application/octet-stream"
    ) -> StoredObject:
        """Authenticated put (platform-internal path, no timing)."""
        if not key:
            raise StorageError("object key must be non-empty")
        if not isinstance(data, (bytes, bytearray)):
            raise StorageError(f"object data must be bytes, got {type(data).__name__}")
        etag = hashlib.md5(bytes(data)).hexdigest()
        obj = StoredObject(bucket, key, bytes(data), content_type, etag)
        self._table(bucket)[key] = obj
        self.put_ops += 1
        self.bytes_in += obj.size
        return obj

    def get_object(self, bucket: str, key: str) -> StoredObject:
        """Authenticated get; raises :class:`KeyNotFoundError` if absent."""
        obj = self._table(bucket).get(key)
        if obj is None:
            raise KeyNotFoundError(f"no object {bucket!r}/{key!r}")
        self.get_ops += 1
        self.bytes_out += obj.size
        return obj

    def head_object(self, bucket: str, key: str) -> StoredObject | None:
        return self._table(bucket).get(key)

    def delete_object(self, bucket: str, key: str) -> None:
        """Delete an object; raises :class:`KeyNotFoundError` if absent
        (and :class:`BucketNotFoundError` for an unknown bucket), so
        callers see the same typed errors as :meth:`get_object`."""
        if self._table(bucket).pop(key, None) is None:
            raise KeyNotFoundError(f"no object {bucket!r}/{key!r}")

    def list_objects(self, bucket: str, prefix: str = "") -> list[str]:
        return sorted(k for k in self._table(bucket) if k.startswith(prefix))

    # -- presigned access ----------------------------------------------------

    def _sign(self, bucket: str, key: str, method: str, expires_at: float) -> str:
        message = f"{method}\n{bucket}\n{key}\n{expires_at!r}".encode()
        return hmac.new(self._secret, message, hashlib.sha256).hexdigest()

    def presign(
        self, bucket: str, key: str, method: str = "GET", expires_in_s: float = 900.0
    ) -> str:
        """Issue a presigned URL for one object and method.

        The URL embeds an HMAC over (method, bucket, key, expiry) — the
        secret never leaves the store.
        """
        method = method.upper()
        if method not in ("GET", "PUT"):
            raise PresignedUrlError(f"presign supports GET/PUT, got {method!r}")
        if expires_in_s <= 0:
            raise PresignedUrlError(f"expires_in_s must be > 0, got {expires_in_s}")
        self._table(bucket)  # bucket must exist
        expires_at = self.env.now + expires_in_s
        self.presigned_issued += 1
        return PresignedUrl(
            bucket, key, method, expires_at, self._sign(bucket, key, method, expires_at)
        ).render()

    def _verify(self, url: str, method: str) -> PresignedUrl:
        parsed = PresignedUrl.parse(url)
        expected = self._sign(parsed.bucket, parsed.key, parsed.method, parsed.expires_at)
        if not hmac.compare_digest(expected, parsed.signature):
            raise PresignedUrlError("presigned URL signature mismatch")
        if parsed.method != method.upper():
            raise PresignedUrlError(
                f"presigned URL allows {parsed.method}, attempted {method.upper()}"
            )
        # Exact-boundary semantics: a URL presented at its expiry
        # instant is already expired (the lifetime is [issue, expiry)).
        if self.env.now >= parsed.expires_at:
            raise PresignedUrlError("presigned URL has expired")
        return parsed

    def presigned_get(self, url: str) -> StoredObject:
        """Use a presigned GET URL (unauthenticated caller)."""
        parsed = self._verify(url, "GET")
        self.presigned_used += 1
        return self.get_object(parsed.bucket, parsed.key)

    def presigned_put(
        self, url: str, data: bytes, content_type: str = "application/octet-stream"
    ) -> StoredObject:
        """Use a presigned PUT URL (unauthenticated caller)."""
        parsed = self._verify(url, "PUT")
        self.presigned_used += 1
        return self.put_object(parsed.bucket, parsed.key, data, content_type)

    # -- timed data path (simulation) ----------------------------------------

    def get_timed(self, bucket: str, key: str) -> Process:
        """Timed download; resolves to the :class:`StoredObject`."""
        return self.env.process(self._get_timed(bucket, key))

    def _get_timed(self, bucket: str, key: str) -> Generator:
        obj = self.get_object(bucket, key)
        yield self.env.timeout(self.model.transfer_time(obj.size))
        return obj

    def put_timed(
        self, bucket: str, key: str, data: bytes, content_type: str = "application/octet-stream"
    ) -> Process:
        """Timed upload; resolves to the stored object."""
        return self.env.process(self._put_timed(bucket, key, data, content_type))

    def _put_timed(self, bucket: str, key: str, data: bytes, content_type: str) -> Generator:
        yield self.env.timeout(self.model.transfer_time(len(data)))
        return self.put_object(bucket, key, data, content_type)

    def presigned_get_timed(self, url: str) -> Process:
        """Timed presigned download (the client's direct data path)."""
        return self.env.process(self._presigned_get_timed(url))

    def _presigned_get_timed(self, url: str) -> Generator:
        obj = self.presigned_get(url)
        yield self.env.timeout(self.model.transfer_time(obj.size))
        return obj

    def presigned_put_timed(
        self, url: str, data: bytes, content_type: str = "application/octet-stream"
    ) -> Process:
        """Timed presigned upload (the client's direct data path)."""
        return self.env.process(self._presigned_put_timed(url, data, content_type))

    def _presigned_put_timed(self, url: str, data: bytes, content_type: str) -> Generator:
        yield self.env.timeout(self.model.transfer_time(len(data)))
        return self.presigned_put(url, data, content_type)

"""Consistent-hash ring.

Partitions the object key space over the in-memory tier's member nodes
(the paper's "distributed in-memory hash table", §V).  Virtual nodes
smooth the load distribution; replica ownership walks the ring to the
next distinct physical nodes.
"""

from __future__ import annotations

import bisect
import hashlib

from repro.errors import StorageError

__all__ = ["HashRing"]


def _hash(value: str) -> int:
    return int.from_bytes(hashlib.md5(value.encode()).digest()[:8], "big")


class HashRing:
    """Consistent hashing with virtual nodes."""

    def __init__(self, nodes: list[str] | None = None, vnodes: int = 64) -> None:
        if vnodes < 1:
            raise StorageError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        self._points: list[int] = []
        self._owners: dict[int, str] = {}
        self._nodes: set[str] = set()
        for node in nodes or []:
            self.add_node(node)

    @property
    def nodes(self) -> tuple[str, ...]:
        return tuple(sorted(self._nodes))

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def add_node(self, node: str) -> None:
        """Add a physical node (its virtual points) to the ring."""
        if node in self._nodes:
            raise StorageError(f"node {node!r} already in ring")
        self._nodes.add(node)
        for i in range(self.vnodes):
            point = _hash(f"{node}#{i}")
            # Collisions across distinct nodes are astronomically rare
            # with 64-bit points; skew one step if it happens.
            while point in self._owners:
                point += 1
            self._owners[point] = node
            bisect.insort(self._points, point)

    def remove_node(self, node: str) -> None:
        """Remove a physical node from the ring."""
        if node not in self._nodes:
            raise StorageError(f"node {node!r} not in ring")
        self._nodes.remove(node)
        dropped = [p for p, n in self._owners.items() if n == node]
        for point in dropped:
            del self._owners[point]
        self._points = sorted(self._owners)

    def owner(self, key: str) -> str:
        """The primary owner node of ``key``."""
        if not self._nodes:
            raise StorageError("hash ring is empty")
        point = _hash(key)
        index = bisect.bisect_right(self._points, point) % len(self._points)
        return self._owners[self._points[index]]

    def owners(self, key: str, count: int) -> list[str]:
        """Primary plus the next ``count - 1`` distinct replica nodes."""
        if not self._nodes:
            raise StorageError("hash ring is empty")
        if count < 1:
            raise StorageError(f"replica count must be >= 1, got {count}")
        count = min(count, len(self._nodes))
        point = _hash(key)
        index = bisect.bisect_right(self._points, point)
        found: list[str] = []
        for offset in range(len(self._points)):
            node = self._owners[self._points[(index + offset) % len(self._points)]]
            if node not in found:
                found.append(node)
                if len(found) == count:
                    break
        return found

    def distribution(self, keys: list[str]) -> dict[str, int]:
        """Histogram of key ownership (diagnostics/tests)."""
        counts = {node: 0 for node in self._nodes}
        for key in keys:
            counts[self.owner(key)] += 1
        return counts

"""Read-path batching from the in-memory tier to the document store.

The read-side counterpart of :mod:`repro.storage.write_behind`: every
DHT miss that has to hit the document store enqueues its key with the
batcher, which lingers briefly and issues ONE multi-get
(:meth:`DocumentStore.read_many`, priced ``op_cost + k * read_cost``)
per window.  The fixed per-operation cost is amortized over the window,
raising the effective DB *read* ceiling the same way the write-behind
flusher raises the write ceiling — which is what keeps the miss storm
after a node failure, rebalance, or cold-start chaos event from
saturating the store with individual reads.

Keys are deduplicated within a window: concurrent misses on the same
key share one slot of the multi-get and all waiters receive the same
result (fired through a per-key :class:`Gate`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator

from repro.errors import StorageError
from repro.sim.kernel import Environment
from repro.sim.resources import Gate
from repro.storage.kv import DocumentStore

__all__ = ["ReadBatchConfig", "ReadBatcher"]


@dataclass(frozen=True)
class ReadBatchConfig:
    """Tuning knobs for the miss-read batcher (swept by ABL-READPATH).

    Attributes:
        max_batch: maximum keys per multi-get operation.
        linger_s: how long the batcher waits after waking to let a
            window accumulate before issuing the multi-get.  Zero reads
            eagerly (still deduplicating concurrent same-key misses).
    """

    max_batch: int = 64
    linger_s: float = 0.002

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise StorageError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.linger_s < 0:
            raise StorageError(f"linger_s must be >= 0, got {self.linger_s}")


class ReadBatcher:
    """A deduplicating window over document-store point reads."""

    def __init__(
        self,
        env: Environment,
        store: DocumentStore,
        collection: str,
        config: ReadBatchConfig | None = None,
        name: str = "rb",
    ) -> None:
        self.env = env
        self.store = store
        self.collection = collection
        self.config = config or ReadBatchConfig()
        self.name = name
        #: key -> gate every waiter for that key parks on.
        self._pending: dict[str, Gate] = {}
        self._arrival = Gate(env)
        self.requested = 0
        self.deduplicated = 0
        self.batch_ops = 0
        self.keys_fetched = 0
        self._running = True
        self._runner = env.process(self._run())

    @property
    def pending(self) -> int:
        """Distinct keys waiting for the next multi-get window."""
        return len(self._pending)

    def read(self, key: str) -> Generator:
        """Fetch one document through the batcher (``yield from`` this).

        Returns the doc (a private copy per waiter is the *caller's*
        responsibility — all waiters of one key share the same object)
        or ``None`` when the store has no such document.
        """
        if not self._running:
            raise StorageError(f"read batcher {self.name!r} is stopped")
        self.requested += 1
        gate = self._pending.get(key)
        if gate is None:
            gate = Gate(self.env)
            was_empty = not self._pending
            self._pending[key] = gate
            if was_empty:
                self._arrival.fire()
        else:
            self.deduplicated += 1
        doc = yield gate.wait()
        return doc

    def stop(self) -> None:
        """Stop the window runner; pending waiters resolve to ``None``."""
        self._running = False
        pending, self._pending = self._pending, {}
        for gate in pending.values():
            gate.fire(None)
        self._arrival.fire()

    def _run(self) -> Generator:
        while self._running:
            if not self._pending:
                yield self._arrival.wait()
                if not self._running:
                    return
            if (
                len(self._pending) < self.config.max_batch
                and self.config.linger_s > 0
            ):
                yield self.env.timeout(self.config.linger_s)
            keys = list(self._pending)[: self.config.max_batch]
            if not keys:
                continue
            gates = [self._pending.pop(k) for k in keys]
            docs: dict[str, Any] = yield self.store.read_many(self.collection, keys)
            self.batch_ops += 1
            self.keys_fetched += len(keys)
            # Even when stopped mid-read, waiters of the in-flight window
            # are answered — the store already did the work.
            for key, gate in zip(keys, gates):
                gate.fire(docs.get(key))

"""The default in-process dict engine.

This is the historical ``DocumentStore`` storage, extracted behind the
:class:`~repro.storage.backends.base.StoreBackend` protocol.  It stores
and returns document *references* — ``DocumentStore`` makes exactly the
same defensive copies it always did around these calls, which is what
keeps the default configuration byte-identical to the pre-backend
store.  Queries run the shared reference evaluator over a full scan;
there are no secondary indexes to maintain, so ``register_schema`` only
remembers the declared keys for introspection.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.model.types import DataType
from repro.storage.backends.base import StoreBackend
from repro.storage.query import Query, QueryResult, evaluate_query

__all__ = ["DictBackend"]


class DictBackend(StoreBackend):
    """Dict-of-dicts engine: fast, deterministic, ephemeral."""

    name = "dict"
    durable = False

    def __init__(self) -> None:
        self._collections: dict[str, dict[str, dict[str, Any]]] = {}
        self._schemas: dict[str, dict[str, DataType]] = {}

    def register_schema(
        self, collection: str, schema: Mapping[str, DataType]
    ) -> None:
        self._schemas.setdefault(collection, {}).update(schema)

    def schema_for(self, collection: str) -> dict[str, DataType]:
        return dict(self._schemas.get(collection, {}))

    def put(self, collection: str, doc: dict[str, Any]) -> None:
        self._collections.setdefault(collection, {})[doc["id"]] = doc

    def put_many(self, collection: str, docs: list[dict[str, Any]]) -> None:
        table = self._collections.setdefault(collection, {})
        for doc in docs:
            table[doc["id"]] = doc

    def get(self, collection: str, key: str) -> dict[str, Any] | None:
        return self._collections.get(collection, {}).get(key)

    def delete(self, collection: str, key: str) -> None:
        self._collections.get(collection, {}).pop(key, None)

    def keys(self, collection: str) -> list[str]:
        return sorted(self._collections.get(collection, {}))

    def count(self, collection: str) -> int:
        return len(self._collections.get(collection, {}))

    def query(self, collection: str, query: Query) -> QueryResult:
        docs = self._collections.get(collection, {}).values()
        return evaluate_query(docs, query, plan="dict-scan")

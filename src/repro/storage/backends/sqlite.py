"""SQLite engine: durable per-class tables with keySpec secondary indexes.

Each collection becomes one table::

    CREATE TABLE "objects.Order" (
        id  TEXT PRIMARY KEY,
        doc TEXT NOT NULL,          -- full document, canonical JSON
        "k_total" REAL,             -- one typed column per declared key
        "k_region" TEXT, ...
    )
    CREATE INDEX "ix_objects.Order_total" ON "objects.Order" ("k_total")

The ``doc`` column is the source of truth; the ``k_*`` columns are a
denormalized projection of ``doc["state"]`` over the keys the class
declared in its ``keySpecs``, maintained on every upsert, purely so the
query layer can compile predicates to indexed SQL.  Queries whose keys
are all declared compile to ``WHERE``/``ORDER BY`` over those columns
(range, equality, and prefix-as-range all index-sargable); anything
else falls back to the shared reference evaluator over a full table
scan, so semantics never depend on the plan.

Durability: WAL journal with ``synchronous=NORMAL`` — a ``kill -9``'d
process loses nothing that was committed, which is exactly the contract
the durability plane's write-through needs (RPO 0 for acknowledged
strong-persistence commits).
"""

from __future__ import annotations

import json
import sqlite3
from typing import Any, Mapping

from repro.errors import StorageError
from repro.model.types import DataType
from repro.storage.backends.base import StoreBackend
from repro.storage.query import (
    Predicate,
    Query,
    QueryResult,
    encode_cursor,
    evaluate_query,
)

__all__ = ["SqliteBackend"]

#: DataType -> SQLite column affinity.  BOOL is stored as 0/1; JSON as
#: canonical text (indexable for equality/prefix).
_AFFINITY = {
    DataType.INT: "INTEGER",
    DataType.FLOAT: "REAL",
    DataType.STR: "TEXT",
    DataType.BOOL: "INTEGER",
    DataType.JSON: "TEXT",
}

_SQL_OPS = {"eq": "=", "lt": "<", "le": "<=", "gt": ">", "ge": ">="}

#: Sorts after every other character in a TEXT column, closing the
#: half-open range that implements prefix matching.
_PREFIX_CEILING = "￿"


def _quote(identifier: str) -> str:
    return '"' + identifier.replace('"', '""') + '"'


def _dump_doc(doc: Mapping[str, Any]) -> str:
    return json.dumps(doc, sort_keys=True, default=str)


class SqliteBackend(StoreBackend):
    """Durable engine over a single SQLite database."""

    name = "sqlite"
    durable = True

    def __init__(self, path: str | None = None) -> None:
        self.path = path
        self._conn = sqlite3.connect(path or ":memory:", check_same_thread=False)
        self._conn.isolation_level = None  # explicit transactions only
        if path:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
        self._schemas: dict[str, dict[str, DataType]] = {}
        self._load_existing_schemas()

    # -- schema ------------------------------------------------------------

    def _load_existing_schemas(self) -> None:
        """Recover collection schemas from a pre-existing database file,
        so a restarted process can query what a dead one indexed."""
        tables = self._conn.execute(
            "SELECT name FROM sqlite_master WHERE type = 'table'"
        ).fetchall()
        for (table,) in tables:
            columns = self._conn.execute(
                f"PRAGMA table_info({_quote(table)})"
            ).fetchall()
            names = [row[1] for row in columns]
            if "id" not in names or "doc" not in names:
                continue
            schema: dict[str, DataType] = {}
            for row in columns:
                column, declared = row[1], (row[2] or "").upper()
                if not column.startswith("k_"):
                    continue
                key = column[2:]
                if declared == "REAL":
                    schema[key] = DataType.FLOAT
                elif declared == "INTEGER":
                    # INT and BOOL share affinity; INT is the safe
                    # recovery guess and compares identically.
                    schema[key] = DataType.INT
                else:
                    schema[key] = DataType.STR
            self._schemas[table] = schema

    def _ensure_table(self, collection: str) -> None:
        if collection in self._schemas:
            return
        self._conn.execute(
            f"CREATE TABLE IF NOT EXISTS {_quote(collection)} "
            "(id TEXT PRIMARY KEY, doc TEXT NOT NULL)"
        )
        self._schemas.setdefault(collection, {})

    def register_schema(
        self, collection: str, schema: Mapping[str, DataType]
    ) -> None:
        """Create the table, key columns, and secondary indexes.

        Idempotent and additive: keys added by a class update get their
        column via ``ALTER TABLE``, a Python backfill from the stored
        documents, and a fresh index.
        """
        self._ensure_table(collection)
        known = self._schemas[collection]
        existing_columns = {
            row[1]
            for row in self._conn.execute(
                f"PRAGMA table_info({_quote(collection)})"
            ).fetchall()
        }
        new_keys: list[str] = []
        for key, dtype in schema.items():
            if dtype not in _AFFINITY:
                continue  # FILE keys are not indexable
            column = f"k_{key}"
            if column not in existing_columns:
                self._conn.execute(
                    f"ALTER TABLE {_quote(collection)} "
                    f"ADD COLUMN {_quote(column)} {_AFFINITY[dtype]}"
                )
                new_keys.append(key)
            known[key] = dtype
            # Composite (key, id): one index serves the range filter,
            # the ORDER BY, and the keyset-cursor tiebreak without a
            # temp sort.
            self._conn.execute(
                f"CREATE INDEX IF NOT EXISTS {_quote(f'ix_{collection}_{key}')} "
                f"ON {_quote(collection)} ({_quote(column)}, id)"
            )
        if new_keys:
            self._backfill(collection, new_keys)

    def _backfill(self, collection: str, keys: list[str]) -> None:
        rows = self._conn.execute(
            f"SELECT id, doc FROM {_quote(collection)}"
        ).fetchall()
        if not rows:
            return
        assignments = ", ".join(f"{_quote(f'k_{key}')} = ?" for key in keys)
        self._conn.execute("BEGIN")
        try:
            for object_id, raw in rows:
                doc = json.loads(raw)
                values = [
                    self._column_value(collection, key, (doc.get("state") or {}).get(key))
                    for key in keys
                ]
                self._conn.execute(
                    f"UPDATE {_quote(collection)} SET {assignments} WHERE id = ?",
                    [*values, object_id],
                )
            self._conn.execute("COMMIT")
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise

    def _column_value(self, collection: str, key: str, value: Any) -> Any:
        if value is None:
            return None
        dtype = self._schemas.get(collection, {}).get(key)
        if dtype is DataType.BOOL:
            return int(bool(value))
        if dtype is DataType.JSON and not isinstance(value, str):
            return json.dumps(value, sort_keys=True, default=str)
        return value

    # -- documents ---------------------------------------------------------

    def _row_values(self, collection: str, doc: Mapping[str, Any]) -> tuple[list[str], list[Any]]:
        state = doc.get("state") or {}
        columns = ["id", "doc"]
        values: list[Any] = [doc["id"], _dump_doc(doc)]
        for key in self._schemas.get(collection, {}):
            columns.append(f"k_{key}")
            values.append(self._column_value(collection, key, state.get(key)))
        return columns, values

    def put(self, collection: str, doc: dict[str, Any]) -> None:
        self.put_many(collection, [doc])

    def put_many(self, collection: str, docs: list[dict[str, Any]]) -> None:
        if not docs:
            return
        self._ensure_table(collection)
        self._conn.execute("BEGIN")
        try:
            for doc in docs:
                columns, values = self._row_values(collection, doc)
                placeholders = ", ".join("?" for _ in columns)
                column_sql = ", ".join(_quote(c) for c in columns)
                self._conn.execute(
                    f"INSERT OR REPLACE INTO {_quote(collection)} "
                    f"({column_sql}) VALUES ({placeholders})",
                    values,
                )
            self._conn.execute("COMMIT")
        except sqlite3.Error as exc:
            self._conn.execute("ROLLBACK")
            raise StorageError(f"sqlite write to {collection!r} failed: {exc}") from exc

    def get(self, collection: str, key: str) -> dict[str, Any] | None:
        if collection not in self._schemas:
            return None
        row = self._conn.execute(
            f"SELECT doc FROM {_quote(collection)} WHERE id = ?", (key,)
        ).fetchone()
        return json.loads(row[0]) if row else None

    def delete(self, collection: str, key: str) -> None:
        if collection not in self._schemas:
            return
        self._conn.execute(
            f"DELETE FROM {_quote(collection)} WHERE id = ?", (key,)
        )

    def keys(self, collection: str) -> list[str]:
        if collection not in self._schemas:
            return []
        rows = self._conn.execute(
            f"SELECT id FROM {_quote(collection)} ORDER BY id"
        ).fetchall()
        return [row[0] for row in rows]

    def count(self, collection: str) -> int:
        if collection not in self._schemas:
            return 0
        row = self._conn.execute(
            f"SELECT COUNT(*) FROM {_quote(collection)}"
        ).fetchone()
        return int(row[0])

    def close(self) -> None:
        self._conn.close()

    # -- queries -----------------------------------------------------------

    def query(self, collection: str, query: Query) -> QueryResult:
        if collection not in self._schemas:
            return QueryResult(docs=[], scanned=0, plan="empty-collection")
        schema = self._schemas[collection]
        indexed = all(pred.key in schema for pred in query.where) and (
            query.order_by is None or query.order_by in schema
        )
        if not indexed:
            return self._scan_query(collection, query)
        return self._indexed_query(collection, query)

    def _scan_query(self, collection: str, query: Query) -> QueryResult:
        """Fallback for keys the engine has no columns for: load every
        document and run the shared reference evaluator."""
        rows = self._conn.execute(
            f"SELECT doc FROM {_quote(collection)}"
        ).fetchall()
        docs = [json.loads(row[0]) for row in rows]
        return evaluate_query(docs, query, plan="table-scan")

    def _compile_predicate(self, pred: Predicate, collection: str) -> tuple[str, list[Any]]:
        column = _quote(f"k_{pred.key}")
        value = self._column_value(collection, pred.key, pred.value)
        if pred.op == "prefix":
            return (
                f"({column} >= ? AND {column} < ?)",
                [value, str(value) + _PREFIX_CEILING],
            )
        return f"{column} {_SQL_OPS[pred.op]} ?", [value]

    def _indexed_query(self, collection: str, query: Query) -> QueryResult:
        conditions: list[str] = []
        params: list[Any] = []
        for pred in query.where:
            sql, values = self._compile_predicate(pred, collection)
            conditions.append(sql)
            params.extend(values)
        order_sql = "id ASC"
        if query.order_by is not None:
            order_column = _quote(f"k_{query.order_by}")
            conditions.append(f"{order_column} IS NOT NULL")
            direction = "DESC" if query.descending else "ASC"
            order_sql = f"{order_column} {direction}, id {direction}"
        where_sql = " AND ".join(conditions) if conditions else "1"

        # What the query is billed for: rows the filter must examine,
        # independent of pagination position or page size.
        scanned = int(
            self._conn.execute(
                f"SELECT COUNT(*) FROM {_quote(collection)} WHERE {where_sql}",
                params,
            ).fetchone()[0]
        )

        page_conditions = list(conditions)
        page_params = list(params)
        if query.cursor is not None:
            sql, values = self._cursor_condition(query)
            page_conditions.append(sql)
            page_params.extend(values)
        page_where = " AND ".join(page_conditions) if page_conditions else "1"
        select = (
            f"SELECT doc FROM {_quote(collection)} "
            f"WHERE {page_where} ORDER BY {order_sql}"
        )
        if query.limit is not None:
            # One row past the page tells us whether a next page exists.
            select += f" LIMIT {query.limit + 1}"

        plan_rows = self._conn.execute(
            f"EXPLAIN QUERY PLAN {select}", page_params
        ).fetchall()
        plan = "; ".join(str(row[-1]) for row in plan_rows)
        # Only our "ix_*" secondary indexes count — a scan that happens
        # to walk the PK autoindex is still a scan.
        index_used = "INDEX IX_" in plan.upper()

        rows = self._conn.execute(select, page_params).fetchall()
        docs = [json.loads(row[0]) for row in rows]
        next_cursor = None
        if query.limit is not None and len(docs) > query.limit:
            docs = docs[: query.limit]
            next_cursor = encode_cursor(docs[-1], query.order_by)
        return QueryResult(
            docs=docs,
            scanned=scanned,
            index_used=index_used,
            plan=plan,
            next_cursor=next_cursor,
        )

    def _cursor_condition(self, query: Query) -> tuple[str, list[Any]]:
        if query.order_by is None:
            return "id > ?", [query.cursor[0]]
        order_column = _quote(f"k_{query.order_by}")
        cursor_value, cursor_id = query.cursor
        comparator = "<" if query.descending else ">"
        return (
            f"({order_column} {comparator} ? OR "
            f"({order_column} = ? AND id {comparator} ?))",
            [cursor_value, cursor_value, cursor_id],
        )

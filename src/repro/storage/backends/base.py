"""The pluggable store-backend protocol.

:class:`DocumentStore` models *when* storage work completes (work
units, the rate limiter, fault injection); a :class:`StoreBackend` is
the engine that decides *where documents live and how they are found* —
an in-process dict (the default, simulation-faithful engine) or SQLite
(durable files that survive process death, with secondary indexes
compiled from each class's declared ``keySpecs``).

The split keeps every cost/copy/fault decision in exactly one place:
backends never sleep, never charge units, and never inject faults.
``DocumentStore`` performs its defensive copies *around* backend calls,
so the dict engine can store and return references and remain
byte-identical to the pre-backend store.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Mapping

from repro.errors import ValidationError
from repro.model.types import DataType
from repro.storage.query import Query, QueryResult

__all__ = ["StoreBackend", "StorageConfig", "make_backend"]


@dataclass(frozen=True)
class StorageConfig:
    """Which engine backs the platform's :class:`DocumentStore`.

    Attributes:
        backend: ``"dict"`` (default; in-memory, byte-identical to the
            historical store) or ``"sqlite"``.
        path: database file for the SQLite engine; ``None`` means a
            private in-memory database (durable semantics, no file).
            Ignored by the dict engine.
    """

    backend: str = "dict"
    path: str | None = None


class StoreBackend(ABC):
    """Synchronous document engine behind :class:`DocumentStore`.

    Contract (held by ``tests/test_storage_backends.py`` for every
    engine):

    * documents are dicts with a string ``id``; ``put`` upserts;
    * ``get`` returns the stored document or ``None`` — the dict engine
      may return a live reference (the store copies around it);
    * ``keys`` is sorted; ``delete`` of an absent key is a no-op;
    * ``query`` follows :func:`repro.storage.query.evaluate_query`
      semantics exactly, whatever the execution strategy;
    * ``register_schema`` declares the indexable keys of a collection —
      engines without indexes may ignore it.
    """

    #: Engine name, used in config, metrics labels, and query plans.
    name: str = "abstract"
    #: True when documents survive process death (enables the
    #: durability plane's write-through).
    durable: bool = False

    @abstractmethod
    def register_schema(
        self, collection: str, schema: Mapping[str, DataType]
    ) -> None:
        """Declare the typed, indexable state keys of ``collection``."""

    @abstractmethod
    def put(self, collection: str, doc: dict[str, Any]) -> None:
        """Upsert one document by ``doc["id"]``."""

    def put_many(self, collection: str, docs: list[dict[str, Any]]) -> None:
        """Upsert a batch atomically (all or nothing where supported)."""
        for doc in docs:
            self.put(collection, doc)

    @abstractmethod
    def get(self, collection: str, key: str) -> dict[str, Any] | None:
        """Fetch one document or ``None``."""

    def get_many(
        self, collection: str, keys: list[str]
    ) -> dict[str, dict[str, Any] | None]:
        """Fetch a batch; absent keys map to ``None``."""
        return {key: self.get(collection, key) for key in keys}

    @abstractmethod
    def delete(self, collection: str, key: str) -> None:
        """Remove one document (no-op if absent)."""

    @abstractmethod
    def keys(self, collection: str) -> list[str]:
        """All document ids in ``collection``, sorted."""

    @abstractmethod
    def count(self, collection: str) -> int:
        """Number of documents in ``collection``."""

    @abstractmethod
    def query(self, collection: str, query: Query) -> QueryResult:
        """Run a typed query; see :mod:`repro.storage.query`."""

    def close(self) -> None:  # pragma: no cover - trivial default
        """Release engine resources (connections, file handles)."""


def make_backend(config: StorageConfig | None) -> StoreBackend:
    """Build the engine named by ``config`` (``None`` = default dict)."""
    from repro.storage.backends.memory import DictBackend

    if config is None or config.backend == "dict":
        return DictBackend()
    if config.backend == "sqlite":
        from repro.storage.backends.sqlite import SqliteBackend

        return SqliteBackend(config.path)
    raise ValidationError(
        f"unknown storage backend {config.backend!r}; expected 'dict' or 'sqlite'"
    )

"""Pluggable store engines behind :class:`~repro.storage.kv.DocumentStore`.

See :mod:`repro.storage.backends.base` for the protocol and
``docs/storage.md`` for the subsystem overview.
"""

from repro.storage.backends.base import StorageConfig, StoreBackend, make_backend
from repro.storage.backends.memory import DictBackend
from repro.storage.backends.sqlite import SqliteBackend

__all__ = [
    "StoreBackend",
    "StorageConfig",
    "make_backend",
    "DictBackend",
    "SqliteBackend",
]

"""Knative-like FaaS engine (paper §III-C; the Fig. 3 baseline's engine).

Reproduces the Knative serving behaviours the experiments depend on:

* **Activator / scale-from-zero** — with no replicas, the first request
  triggers a scale-up and buffers until the pod is ready (a cold
  start).
* **Concurrency-based autoscaler (KPA)** — desired replicas track
  observed in-flight requests against ``concurrency x target
  utilization``; after an idle grace period the service scales back to
  ``min_scale`` (possibly zero).
* **Per-request proxy overhead** — every request traverses the
  activator/queue-proxy data path, which is the overhead ``oprc-bypass``
  eliminates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Generator, Mapping

from repro.errors import InvocationError, SchedulingError
from repro.faas.engine import EngineModel, FaasEngine, FunctionService
from repro.faas.registry import FunctionRegistry
from repro.faas.runtime import InvocationTask
from repro.model.function import FunctionDefinition
from repro.monitoring.events import EventLog
from repro.monitoring.tracing import Span, Tracer
from repro.orchestrator.deployment import Deployment
from repro.orchestrator.pod import Pod, PodSpec
from repro.orchestrator.resources import ResourceSpec
from repro.orchestrator.scheduler import Scheduler
from repro.sim.kernel import Environment

__all__ = ["KnativeModel", "KnativeService", "KnativeEngine"]


@dataclass(frozen=True)
class KnativeModel(EngineModel):
    """Knative-specific tuning on top of the generic engine model."""

    request_overhead_s: float = 0.002
    cold_start_s: float = 1.8
    target_utilization: float = 0.7
    autoscale_interval_s: float = 2.0
    scale_to_zero_grace_s: float = 30.0


class KnativeService(FunctionService):
    """A Knative service: autoscaled revision + activator semantics."""

    def __init__(
        self,
        env: Environment,
        name: str,
        definition: FunctionDefinition,
        entry,
        scheduler: Scheduler,
        model: KnativeModel,
        services: Mapping[str, Any] | None = None,
        node_hints: list[str] | None = None,
        tracer: Tracer | None = None,
        events: EventLog | None = None,
    ) -> None:
        provision = definition.provision
        spec = PodSpec(
            image=definition.image,
            resources=ResourceSpec(provision.cpu_millis, provision.memory_mb),
            concurrency=provision.concurrency,
            startup_delay_s=model.cold_start_s,
            labels={"serving.oparaca.io/service": name},
        )
        deployment = Deployment(
            env,
            name=f"kn-{name}",
            spec=spec,
            scheduler=scheduler,
            replicas=max(provision.min_scale, 1),
            node_hints=node_hints,
        )
        super().__init__(
            env, name, definition, entry, deployment, model, services,
            tracer=tracer, events=events,
        )
        self.min_scale = provision.min_scale
        self.max_scale = provision.max_scale
        self._last_request_at = env.now
        self._running = True
        self._autoscaler = env.process(self._autoscale_loop())

    # -- activator path --------------------------------------------------------

    def _acquire_pod(
        self, task: InvocationTask | None = None, parent: Span | None = None
    ) -> Generator[Any, Any, Pod]:
        self._last_request_at = self.env.now
        while True:
            pod = self.deployment.least_loaded_pod(include_starting=True)
            if pod is None:
                # Scale from zero: the activator holds the request and
                # kicks the autoscaler synchronously.
                try:
                    self.deployment.scale(1)
                except SchedulingError as exc:
                    raise InvocationError(
                        f"service {self.name!r}: cluster cannot host a replica"
                    ) from exc
                continue
            if pod.is_ready:
                return pod
            # The request is buffered behind a booting replica: that
            # wait is the user-visible cold start.
            self.cold_starts += 1
            cold_span = None
            if self.tracer.enabled and task is not None:
                cold_span = self.tracer.start(
                    task.trace_id or task.request_id,
                    "faas.cold_start",
                    parent=parent,
                    service=self.name,
                    pod=pod.name,
                )
            if self.events.enabled:
                self.events.record(
                    "faas.cold_start", service=self.name, pod=pod.name
                )
            yield pod.ready_event()
            self.tracer.finish(cold_span, ready=pod.is_ready)
            if pod.is_ready:
                return pod
            # The pod died while starting; retry placement.

    # -- autoscaler (KPA) --------------------------------------------------------

    def desired_replicas(self) -> int:
        """The KPA decision from current in-flight concurrency."""
        model: KnativeModel = self.model
        in_flight = self.deployment.total_in_flight()
        if in_flight <= 0:
            idle = self.env.now - self._last_request_at
            if idle >= model.scale_to_zero_grace_s:
                return self.min_scale
            return max(self.min_scale, min(self.deployment.replicas, self.max_scale))
        target_per_pod = max(1.0, self.definition.provision.concurrency * model.target_utilization)
        desired = math.ceil(in_flight / target_per_pod)
        return max(self.min_scale, 1, min(self.max_scale, desired))

    def _autoscale_loop(self) -> Generator:
        model: KnativeModel = self.model
        while self._running:
            yield self.env.timeout(model.autoscale_interval_s)
            if not self._running:
                return
            self.tick()

    def tick(self) -> None:
        """One autoscaler evaluation (exposed for deterministic tests)."""
        self.deployment.reconcile()
        desired = self.desired_replicas()
        before = self.deployment.replicas
        if desired == before:
            return
        try:
            self.deployment.scale(desired)
        except SchedulingError:
            # Cluster full: keep whatever fit.
            pass
        if self.events.enabled and self.deployment.replicas != before:
            self.events.record(
                "autoscale.knative",
                service=self.name,
                before=before,
                after=self.deployment.replicas,
                desired=desired,
            )

    def stop(self) -> None:
        """Stop the autoscaler loop (teardown)."""
        self._running = False


class KnativeEngine(FaasEngine):
    """Deploys functions as Knative services."""

    def __init__(
        self,
        env: Environment,
        scheduler: Scheduler,
        registry: FunctionRegistry,
        model: KnativeModel | None = None,
        tracer: Tracer | None = None,
        events: EventLog | None = None,
    ) -> None:
        super().__init__(env, registry, tracer=tracer, events=events)
        self.scheduler = scheduler
        self.model = model or KnativeModel()

    def deploy(
        self,
        name: str,
        definition: FunctionDefinition,
        services: Mapping[str, Any] | None = None,
        node_hints: list[str] | None = None,
    ) -> KnativeService:
        entry = self.registry.get(definition.image)
        svc = KnativeService(
            self.env,
            name,
            definition,
            entry,
            self.scheduler,
            self.model,
            services=services,
            node_hints=node_hints,
            tracer=self.tracer,
            events=self.events,
        )
        self._register(svc)
        return svc

    def delete(self, name: str) -> None:
        svc = self._services.get(name)
        if isinstance(svc, KnativeService):
            svc.stop()
        super().delete(name)

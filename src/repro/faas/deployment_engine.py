"""Plain-deployment FaaS engine (the ``oprc-bypass`` execution path).

Fig. 3's ``oprc-bypass`` "uses a standard Kubernetes deployment as its
underlying function execution instead of Knative": replicas are
provisioned up front (optionally autoscaled by the generic HPA), there
is no activator hop, no queue-proxy, and no scale-to-zero — so requests
skip Knative's per-request overhead and never see cold starts, at the
cost of idle replicas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Mapping

from repro.errors import InvocationError
from repro.faas.engine import EngineModel, FaasEngine, FunctionService
from repro.faas.registry import FunctionRegistry
from repro.faas.runtime import InvocationTask
from repro.model.function import FunctionDefinition
from repro.monitoring.events import EventLog
from repro.monitoring.tracing import Span, Tracer
from repro.orchestrator.deployment import Deployment
from repro.orchestrator.hpa import HorizontalPodAutoscaler
from repro.orchestrator.pod import Pod, PodSpec
from repro.orchestrator.resources import ResourceSpec
from repro.orchestrator.scheduler import Scheduler
from repro.sim.kernel import Environment

__all__ = ["DeploymentModel", "DeploymentService", "DeploymentEngine"]


@dataclass(frozen=True)
class DeploymentModel(EngineModel):
    """Thin data path: just the service VIP, no serverless machinery."""

    request_overhead_s: float = 0.0004
    cold_start_s: float = 1.5
    autoscale: bool = False
    autoscale_interval_s: float = 2.0


class DeploymentService(FunctionService):
    """A pre-provisioned deployment behind a plain service."""

    def __init__(
        self,
        env: Environment,
        name: str,
        definition: FunctionDefinition,
        entry,
        scheduler: Scheduler,
        model: DeploymentModel,
        replicas: int,
        services: Mapping[str, Any] | None = None,
        node_hints: list[str] | None = None,
        tracer: Tracer | None = None,
        events: EventLog | None = None,
    ) -> None:
        provision = definition.provision
        spec = PodSpec(
            image=definition.image,
            resources=ResourceSpec(provision.cpu_millis, provision.memory_mb),
            concurrency=provision.concurrency,
            startup_delay_s=model.cold_start_s,
            labels={"app.oparaca.io/deployment": name},
        )
        deployment = Deployment(
            env,
            name=f"dep-{name}",
            spec=spec,
            scheduler=scheduler,
            replicas=replicas,
            node_hints=node_hints,
        )
        super().__init__(
            env, name, definition, entry, deployment, model, services,
            tracer=tracer, events=events,
        )
        self.hpa: HorizontalPodAutoscaler | None = None
        if model.autoscale:
            self.hpa = HorizontalPodAutoscaler(
                env,
                deployment,
                target_per_replica=max(1.0, provision.concurrency * 0.7),
                min_replicas=max(1, replicas),
                max_replicas=provision.max_scale,
                interval_s=model.autoscale_interval_s,
                events=events,
            )

    def _acquire_pod(
        self, task: InvocationTask | None = None, parent: Span | None = None
    ) -> Generator[Any, Any, Pod]:
        pod = self.deployment.least_loaded_pod()
        if pod is not None:
            return pod
        # Replicas exist but are still booting (deploy-time warm-up):
        # wait on the least-loaded starting pod rather than failing.
        pod = self.deployment.least_loaded_pod(include_starting=True)
        if pod is None:
            raise InvocationError(
                f"service {self.name!r} has no replicas; plain deployments "
                "do not scale from zero"
            )
        while not pod.is_ready:
            yield pod.ready_event()
            if pod.is_ready:
                break
            pod = self.deployment.least_loaded_pod(include_starting=True)
            if pod is None:
                raise InvocationError(f"service {self.name!r} lost all replicas")
        return pod

    def stop(self) -> None:
        if self.hpa is not None:
            self.hpa.stop()


class DeploymentEngine(FaasEngine):
    """Deploys functions as plain deployments."""

    def __init__(
        self,
        env: Environment,
        scheduler: Scheduler,
        registry: FunctionRegistry,
        model: DeploymentModel | None = None,
        tracer: Tracer | None = None,
        events: EventLog | None = None,
    ) -> None:
        super().__init__(env, registry, tracer=tracer, events=events)
        self.scheduler = scheduler
        self.model = model or DeploymentModel()

    def deploy(
        self,
        name: str,
        definition: FunctionDefinition,
        services: Mapping[str, Any] | None = None,
        node_hints: list[str] | None = None,
        replicas: int | None = None,
    ) -> DeploymentService:
        entry = self.registry.get(definition.image)
        svc = DeploymentService(
            self.env,
            name,
            definition,
            entry,
            self.scheduler,
            self.model,
            replicas=replicas if replicas is not None else max(1, definition.provision.min_scale),
            services=services,
            node_hints=node_hints,
            tracer=self.tracer,
            events=self.events,
        )
        self._register(svc)
        return svc

    def delete(self, name: str) -> None:
        svc = self._services.get(name)
        if isinstance(svc, DeploymentService):
            svc.stop()
        super().delete(name)

"""FaaS substrate: the task contract, image registry, and engines."""

from repro.faas.deployment_engine import DeploymentEngine, DeploymentModel, DeploymentService
from repro.faas.engine import EngineModel, FaasEngine, FunctionService
from repro.faas.knative import KnativeEngine, KnativeModel, KnativeService
from repro.faas.registry import FunctionRegistry, RegisteredImage
from repro.faas.runtime import InvocationTask, TaskCompletion, TaskContext

__all__ = [
    "DeploymentEngine",
    "DeploymentModel",
    "DeploymentService",
    "EngineModel",
    "FaasEngine",
    "FunctionService",
    "KnativeEngine",
    "KnativeModel",
    "KnativeService",
    "FunctionRegistry",
    "RegisteredImage",
    "InvocationTask",
    "TaskCompletion",
    "TaskContext",
]

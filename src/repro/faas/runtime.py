"""The pure-function offloading contract (paper §III-C).

Oparaca's class runtime "bundles the object state and input request
into the standalone invocation task" and offloads it to a FaaS engine,
which "returns the output and modified state in the response body".
This module defines that wire contract:

* :class:`InvocationTask` — everything the function needs: target
  object identity, a *copy* of its structured state, presigned URLs for
  its FILE entries, and the request payload.
* :class:`TaskCompletion` — the function's response: output payload,
  state updates, file updates, or an error.
* :class:`TaskContext` — the SDK handed to Python handlers; mutations
  to ``ctx.state`` are diffed into the completion automatically.

Handlers may be plain callables (instantaneous) or generator functions
that ``yield`` simulation events — the latter model applications that
perform their own blocking I/O *while occupying a function replica*,
which is exactly how the Fig. 3 Knative baseline hits the database on
every request.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.errors import ValidationError

__all__ = ["InvocationTask", "TaskCompletion", "TaskContext"]


@dataclass(frozen=True)
class InvocationTask:
    """A standalone unit of work shipped to a FaaS engine.

    The engine needs nothing else: state travels with the task, so the
    code execution runtime is "entirely decoupled from the state
    management".
    """

    request_id: str
    cls: str
    object_id: str
    fn_name: str
    image: str
    payload: Mapping[str, Any] = field(default_factory=dict)
    state: Mapping[str, Any] = field(default_factory=dict)
    file_urls: Mapping[str, str] = field(default_factory=dict)
    immutable: bool = False
    #: Trace correlation: the engine stamps the originating trace and
    #: the offload span, so FaaS-side spans (queueing, cold start,
    #: execution) land in the same tree as the invocation.
    trace_id: str | None = None
    trace_parent: int | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "payload", dict(self.payload))
        object.__setattr__(self, "state", dict(self.state))
        object.__setattr__(self, "file_urls", dict(self.file_urls))


@dataclass(frozen=True)
class TaskCompletion:
    """The function's response."""

    request_id: str
    output: Mapping[str, Any] = field(default_factory=dict)
    state_updates: Mapping[str, Any] = field(default_factory=dict)
    file_updates: Mapping[str, str] = field(default_factory=dict)
    error: str | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "output", dict(self.output))
        object.__setattr__(self, "state_updates", dict(self.state_updates))
        object.__setattr__(self, "file_updates", dict(self.file_updates))

    @property
    def ok(self) -> bool:
        return self.error is None

    @classmethod
    def failure(cls, request_id: str, error: str) -> "TaskCompletion":
        return cls(request_id=request_id, error=error)


class TaskContext:
    """The handler-side SDK around an :class:`InvocationTask`.

    ``ctx.state`` is a mutable copy of the object state; after the
    handler runs, :meth:`completion` diffs it against the original to
    produce the ``state_updates`` the platform commits.  Handlers on
    immutable bindings get a frozen view — writes raise immediately
    rather than being silently dropped.
    """

    def __init__(self, task: InvocationTask, services: Mapping[str, Any] | None = None) -> None:
        self.task = task
        self.payload = dict(task.payload)
        self.state = dict(task.state)
        self.files = dict(task.file_urls)
        self.services = dict(services or {})
        self._original_state = dict(task.state)
        self._file_updates: dict[str, str] = {}

    @property
    def object_id(self) -> str:
        return self.task.object_id

    @property
    def cls(self) -> str:
        return self.task.cls

    def service(self, name: str) -> Any:
        """A platform-bound service (object store client, etc.)."""
        if name not in self.services:
            raise ValidationError(f"no service {name!r} bound to this runtime")
        return self.services[name]

    def update_file(self, key: str, object_key: str) -> None:
        """Record that FILE state key ``key`` now points at ``object_key``."""
        self._file_updates[key] = object_key

    def state_updates(self) -> dict[str, Any]:
        """Keys whose values changed relative to the incoming task."""
        if self.task.immutable:
            return {}
        updates: dict[str, Any] = {}
        for key, value in self.state.items():
            if key not in self._original_state or self._original_state[key] != value:
                updates[key] = value
        return updates

    def completion(self, output: Mapping[str, Any] | None = None) -> TaskCompletion:
        """Build the task response from the context's current state."""
        if self.task.immutable and (
            self.state != self._original_state or self._file_updates
        ):
            return TaskCompletion.failure(
                self.task.request_id,
                f"function {self.task.fn_name!r} modified state but its "
                "binding is immutable",
            )
        return TaskCompletion(
            request_id=self.task.request_id,
            output=dict(output or {}),
            state_updates=self.state_updates(),
            file_updates=dict(self._file_updates),
        )

"""FaaS engine abstraction.

Oparaca "doesn't tightly rely on any FaaS system ... by using an RPC
request for offloading a task, any FaaS engine can accept this task"
(§III-C).  Accordingly the platform only depends on this interface:

* :class:`FaasEngine.deploy` turns a function definition into a
  :class:`FunctionService`;
* :meth:`FunctionService.invoke` accepts an
  :class:`~repro.faas.runtime.InvocationTask` and resolves to a
  :class:`~repro.faas.runtime.TaskCompletion`.

Shared here: the execution core that occupies a pod slot, charges
routing overhead and service time, runs the handler (plain or
generator), and converts results/exceptions into completions.
"""

from __future__ import annotations

import abc
import inspect
from dataclasses import dataclass
from typing import Any, Generator, Mapping

from repro.errors import InvocationError, ValidationError
from repro.faas.registry import FunctionRegistry, RegisteredImage
from repro.faas.runtime import InvocationTask, TaskCompletion, TaskContext
from repro.model.function import FunctionDefinition
from repro.monitoring.events import EventLog
from repro.monitoring.tracing import Span, Tracer
from repro.orchestrator.deployment import Deployment
from repro.orchestrator.pod import Pod
from repro.sim.kernel import Environment, Process

__all__ = ["EngineModel", "FunctionService", "FaasEngine"]


@dataclass(frozen=True)
class EngineModel:
    """Per-request cost of the engine's data path.

    ``request_overhead_s`` covers the proxy hops a request traverses
    before user code runs (for Knative: activator + queue-proxy; for a
    plain deployment: just the service VIP).  The gap between the two is
    the ``oprc`` vs ``oprc-bypass`` difference in Fig. 3.
    """

    request_overhead_s: float = 0.001
    cold_start_s: float = 1.5


class FunctionService(abc.ABC):
    """One deployed function on some engine."""

    def __init__(
        self,
        env: Environment,
        name: str,
        definition: FunctionDefinition,
        entry: RegisteredImage,
        deployment: Deployment,
        model: EngineModel,
        services: Mapping[str, Any] | None = None,
        tracer: Tracer | None = None,
        events: EventLog | None = None,
    ) -> None:
        self.env = env
        self.name = name
        self.definition = definition
        self.entry = entry
        self.deployment = deployment
        self.model = model
        self.services = dict(services or {})
        self.tracer = tracer if tracer is not None else Tracer(env)
        self.events = events if events is not None else EventLog(env)
        # Precomputed span names keep the disabled-tracing path free of
        # per-request string formatting.
        self._queue_span_name = f"faas.queue {name}"
        self._exec_span_name = f"faas.execute {name}"
        self.invocations = 0
        self.completed = 0
        self.errors = 0
        self.cold_starts = 0
        self.busy_time = 0.0
        # Chaos-plane slowdown multipliers (1.0 = healthy).  Checked with
        # one truthiness branch per request when no fault is injected.
        self._slow_factor = 1.0
        self._node_slow: dict[str, float] = {}

    # -- fault injection (chaos plane) --------------------------------------

    def set_slowdown(self, factor: float, node: str | None = None) -> None:
        """Multiply charged execution time by ``factor`` — service-wide,
        or only for pods on ``node`` (a saturated/overheating host)."""
        if factor <= 0:
            raise ValidationError(f"slowdown factor must be > 0, got {factor}")
        if node is None:
            self._slow_factor = factor
        else:
            self._node_slow[node] = factor

    def clear_slowdown(self, node: str | None = None) -> None:
        if node is None:
            self._slow_factor = 1.0
            self._node_slow.clear()
        else:
            self._node_slow.pop(node, None)

    # -- engine-specific capacity management --------------------------------

    @abc.abstractmethod
    def _acquire_pod(
        self, task: InvocationTask | None = None, parent: Span | None = None
    ) -> Generator[Any, Any, Pod]:
        """Yield until a pod is available for one more request.

        ``task``/``parent`` carry trace context so engines can attribute
        waits (cold starts) to the requesting trace.
        """

    # -- shared execution core ----------------------------------------------

    def invoke(self, task: InvocationTask) -> Process:
        """Run ``task``; the process resolves to a :class:`TaskCompletion`.

        Application failures become failed completions; only platform
        failures (no capacity at all) raise :class:`InvocationError`.
        """
        return self.env.process(self._invoke(task))

    def _invoke(self, task: InvocationTask) -> Generator[Any, Any, TaskCompletion]:
        self.invocations += 1
        queue_span = exec_span = None
        if self.tracer.enabled:
            trace_id = task.trace_id or task.request_id
            queue_span = self.tracer.start(
                trace_id, self._queue_span_name, parent=task.trace_parent
            )
        pod = yield from self._acquire_pod(task, queue_span)
        slot = pod.slots.request()
        yield slot
        if queue_span is not None:
            self.tracer.finish(queue_span, pod=pod.name)
            exec_span = self.tracer.start(
                queue_span.trace_id,
                self._exec_span_name,
                parent=task.trace_parent,
                pod=pod.name,
                node=pod.node,
            )
        started = self.env.now
        duration = self.model.request_overhead_s + self.entry.service_time(task)
        if self._node_slow or self._slow_factor != 1.0:
            duration *= self._slow_factor * self._node_slow.get(pod.node, 1.0)
        try:
            yield self.env.timeout(duration)
            completion = yield from self._run_handler(task)
        finally:
            self.busy_time += self.env.now - started
            pod.slots.release()
        if exec_span is not None:
            self.tracer.finish(exec_span, ok=completion.ok)
        if completion.ok:
            self.completed += 1
        else:
            self.errors += 1
        return completion

    def _run_handler(self, task: InvocationTask) -> Generator[Any, Any, TaskCompletion]:
        ctx = TaskContext(task, services=self.services)
        try:
            if self.entry.is_generator_handler:
                result = yield from self.entry.handler(ctx)
            else:
                result = self.entry.handler(ctx)
                if inspect.isgenerator(result):
                    result = yield from result
        except Exception as exc:  # noqa: BLE001 - user code boundary
            return TaskCompletion.failure(
                task.request_id, f"{type(exc).__name__}: {exc}"
            )
        if isinstance(result, TaskCompletion):
            return result
        if result is None or isinstance(result, Mapping):
            return ctx.completion(result)
        return TaskCompletion.failure(
            task.request_id,
            f"handler for {task.image!r} returned {type(result).__name__}; "
            "expected a mapping, TaskCompletion, or None",
        )

    # -- introspection --------------------------------------------------------

    @property
    def replicas(self) -> int:
        return self.deployment.replicas

    @property
    def ready_replicas(self) -> int:
        return self.deployment.ready_replicas

    def total_in_flight(self) -> int:
        return self.deployment.total_in_flight()


class FaasEngine(abc.ABC):
    """A pluggable code-execution runtime."""

    def __init__(
        self,
        env: Environment,
        registry: FunctionRegistry,
        tracer: Tracer | None = None,
        events: EventLog | None = None,
    ) -> None:
        self.env = env
        self.registry = registry
        self.tracer = tracer
        self.events = events
        self._services: dict[str, FunctionService] = {}

    @abc.abstractmethod
    def deploy(
        self,
        name: str,
        definition: FunctionDefinition,
        services: Mapping[str, Any] | None = None,
        node_hints: list[str] | None = None,
    ) -> FunctionService:
        """Create (and register) a service running ``definition``."""

    def service(self, name: str) -> FunctionService:
        svc = self._services.get(name)
        if svc is None:
            raise InvocationError(f"no service {name!r} deployed on this engine")
        return svc

    def __contains__(self, name: str) -> bool:
        return name in self._services

    @property
    def service_names(self) -> tuple[str, ...]:
        return tuple(sorted(self._services))

    def delete(self, name: str) -> None:
        svc = self._services.pop(name, None)
        if svc is not None:
            svc.deployment.delete()

    def _register(self, svc: FunctionService) -> FunctionService:
        if svc.name in self._services:
            raise ValidationError(f"service {svc.name!r} already deployed")
        self._services[svc.name] = svc
        return svc

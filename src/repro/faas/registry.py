"""The container-image registry.

In the real platform a function's ``image`` is a container reference;
here it resolves to a registered Python handler plus a service-time
model.  Handlers follow the :mod:`repro.faas.runtime` contract: they
receive a :class:`~repro.faas.runtime.TaskContext` and return either an
output mapping, a ready :class:`~repro.faas.runtime.TaskCompletion`, or
``None`` (no output).  A handler implemented as a *generator function*
may ``yield`` simulation events (timed I/O) while it executes.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import ValidationError
from repro.faas.runtime import InvocationTask, TaskContext

__all__ = ["RegisteredImage", "FunctionRegistry"]

Handler = Callable[[TaskContext], Any]
ServiceTime = float | Callable[[InvocationTask], float]


@dataclass(frozen=True)
class RegisteredImage:
    """One deployable image: handler + execution-cost model."""

    image: str
    handler: Handler
    service_time_s: ServiceTime = 0.001
    output_bytes: int = 256
    description: str = ""

    def service_time(self, task: InvocationTask) -> float:
        if callable(self.service_time_s):
            return float(self.service_time_s(task))
        return float(self.service_time_s)

    @property
    def is_generator_handler(self) -> bool:
        return inspect.isgeneratorfunction(self.handler)


class FunctionRegistry:
    """Image name → registered handler."""

    def __init__(self) -> None:
        self._images: dict[str, RegisteredImage] = {}

    def register(
        self,
        image: str,
        handler: Handler,
        service_time_s: ServiceTime = 0.001,
        output_bytes: int = 256,
        description: str = "",
    ) -> RegisteredImage:
        """Register (or replace) an image."""
        if not image:
            raise ValidationError("image name must be non-empty")
        if not callable(handler):
            raise ValidationError(f"handler for {image!r} is not callable")
        entry = RegisteredImage(image, handler, service_time_s, output_bytes, description)
        self._images[image] = entry
        return entry

    def function(
        self,
        image: str,
        service_time_s: ServiceTime = 0.001,
        output_bytes: int = 256,
        description: str = "",
    ) -> Callable[[Handler], Handler]:
        """Decorator form of :meth:`register`::

            @registry.function("img/resize", service_time_s=0.004)
            def resize(ctx):
                ...
        """

        def decorate(handler: Handler) -> Handler:
            self.register(image, handler, service_time_s, output_bytes, description)
            return handler

        return decorate

    def get(self, image: str) -> RegisteredImage:
        entry = self._images.get(image)
        if entry is None:
            raise ValidationError(
                f"image {image!r} is not registered; known images: "
                f"{sorted(self._images)}"
            )
        return entry

    def __contains__(self, image: str) -> bool:
        return image in self._images

    @property
    def images(self) -> tuple[str, ...]:
        return tuple(sorted(self._images))

    def merged_with(self, other: "FunctionRegistry") -> "FunctionRegistry":
        """A new registry with ``other``'s images overlaid on this one."""
        merged = FunctionRegistry()
        merged._images.update(self._images)
        merged._images.update(other._images)
        return merged

"""Resource quantities for the container orchestrator.

Kubernetes-style requests: CPU in millicores, memory in MiB.  Nodes
have a capacity; pods carry requests; the scheduler packs requests into
capacities.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ValidationError

__all__ = ["ResourceSpec"]


@dataclass(frozen=True)
class ResourceSpec:
    """A (cpu, memory) quantity."""

    cpu_millis: int = 0
    memory_mb: int = 0

    def __post_init__(self) -> None:
        if self.cpu_millis < 0 or self.memory_mb < 0:
            raise ValidationError(f"negative resources: {self}")

    def __add__(self, other: "ResourceSpec") -> "ResourceSpec":
        return ResourceSpec(
            self.cpu_millis + other.cpu_millis, self.memory_mb + other.memory_mb
        )

    def __sub__(self, other: "ResourceSpec") -> "ResourceSpec":
        return ResourceSpec(
            self.cpu_millis - other.cpu_millis, self.memory_mb - other.memory_mb
        )

    def fits_within(self, capacity: "ResourceSpec") -> bool:
        """Whether this request fits in ``capacity``."""
        return (
            self.cpu_millis <= capacity.cpu_millis
            and self.memory_mb <= capacity.memory_mb
        )

    @property
    def is_zero(self) -> bool:
        return self.cpu_millis == 0 and self.memory_mb == 0

    def scaled(self, factor: int) -> "ResourceSpec":
        if factor < 0:
            raise ValidationError(f"negative scale factor {factor}")
        return ResourceSpec(self.cpu_millis * factor, self.memory_mb * factor)

"""Pods: the orchestrator's unit of placement and execution.

A pod carries a container image, resource requests, and a per-replica
request-concurrency limit.  Once scheduled, its concurrency slots are a
:class:`~repro.sim.resources.Resource` that the FaaS engines queue
executions on; readiness is an event fired after the container's
startup delay — the *cold start* measured by ABL-COLD.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ValidationError
from repro.monitoring.events import EventLog
from repro.orchestrator.resources import ResourceSpec
from repro.sim.kernel import Environment, Event
from repro.sim.resources import Resource

__all__ = ["PodPhase", "PodSpec", "Pod"]


class PodPhase(str, enum.Enum):
    PENDING = "PENDING"
    STARTING = "STARTING"
    RUNNING = "RUNNING"
    TERMINATED = "TERMINATED"


@dataclass(frozen=True)
class PodSpec:
    """Immutable template a deployment stamps pods from."""

    image: str
    resources: ResourceSpec = field(default_factory=lambda: ResourceSpec(500, 256))
    concurrency: int = 8
    startup_delay_s: float = 0.0
    labels: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.image:
            raise ValidationError("pod image must be non-empty")
        if self.concurrency < 1:
            raise ValidationError(f"pod concurrency must be >= 1, got {self.concurrency}")
        if self.startup_delay_s < 0:
            raise ValidationError(f"negative startup delay {self.startup_delay_s}")
        object.__setattr__(self, "labels", dict(self.labels))


class Pod:
    """A scheduled (or pending) pod instance."""

    def __init__(
        self,
        env: Environment,
        name: str,
        spec: PodSpec,
        events: EventLog | None = None,
    ) -> None:
        self.env = env
        self.name = name
        self.spec = spec
        self.events = events if events is not None else EventLog(env)
        self.phase = PodPhase.PENDING
        self.node: str | None = None
        self.created_at = env.now
        self.ready_at: float | None = None
        self.slots = Resource(env, spec.concurrency)
        self._ready = Event(env)

    @property
    def is_ready(self) -> bool:
        return self.phase is PodPhase.RUNNING

    @property
    def in_flight(self) -> int:
        """Requests currently executing or queued on this pod."""
        return self.slots.in_use + self.slots.queue_length

    def ready_event(self) -> Event:
        """An event that fires when the pod becomes RUNNING.

        Already-ready pods return an already-fired event.
        """
        return self._ready

    def _start(self, node: str) -> None:
        """Called by the cluster when the scheduler binds the pod."""
        self.node = node
        self.phase = PodPhase.STARTING
        self.env.process(self._boot())

    def _boot(self):
        if self.spec.startup_delay_s:
            yield self.env.timeout(self.spec.startup_delay_s)
        else:
            yield self.env.timeout(0)
        if self.phase is PodPhase.STARTING:
            self.phase = PodPhase.RUNNING
            self.ready_at = self.env.now
            if self.events.enabled:
                self.events.record(
                    "pod.ready",
                    pod=self.name,
                    node=self.node,
                    startup_s=self.ready_at - self.created_at,
                )
            if not self._ready.triggered:
                self._ready.succeed(self)

    def _terminate(self) -> None:
        self.phase = PodPhase.TERMINATED
        if not self._ready.triggered:
            # Nothing should keep waiting on a dead pod.
            self._ready.succeed(None)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Pod {self.name} {self.phase.value} on {self.node}>"

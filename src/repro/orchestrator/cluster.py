"""The cluster: nodes (worker VMs) and the pods bound to them.

The evaluation scales *worker VMs* from 3 to 12 (Fig. 3); each VM is a
:class:`Node` with a fixed capacity.  The cluster tracks allocations
and delegates placement decisions to a scheduler.
"""

from __future__ import annotations

import itertools

from repro.errors import SchedulingError, ValidationError
from repro.monitoring.events import EventLog
from repro.orchestrator.pod import Pod, PodPhase, PodSpec
from repro.orchestrator.resources import ResourceSpec
from repro.sim.kernel import Environment

__all__ = ["Node", "Cluster"]


class Node:
    """One worker VM."""

    def __init__(
        self,
        name: str,
        capacity: ResourceSpec,
        labels: dict[str, str] | None = None,
    ) -> None:
        if not name:
            raise ValidationError("node name must be non-empty")
        self.name = name
        self.capacity = capacity
        self.labels = dict(labels or {})
        self.pods: dict[str, Pod] = {}

    @property
    def allocated(self) -> ResourceSpec:
        total = ResourceSpec()
        for pod in self.pods.values():
            total = total + pod.spec.resources
        return total

    @property
    def allocatable(self) -> ResourceSpec:
        return self.capacity - self.allocated

    def can_fit(self, request: ResourceSpec) -> bool:
        return request.fits_within(self.allocatable)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Node {self.name} alloc={self.allocated} cap={self.capacity}>"


class Cluster:
    """Node inventory plus pod lifecycle (bind, terminate)."""

    def __init__(self, env: Environment, events: EventLog | None = None) -> None:
        self.env = env
        self.events = events if events is not None else EventLog(env)
        self._nodes: dict[str, Node] = {}
        self._pods: dict[str, Pod] = {}
        self._pod_seq = itertools.count(1)

    # -- nodes ---------------------------------------------------------------

    def add_node(
        self,
        name: str,
        capacity: ResourceSpec | None = None,
        labels: dict[str, str] | None = None,
    ) -> Node:
        if name in self._nodes:
            raise ValidationError(f"node {name!r} already exists")
        node = Node(name, capacity or ResourceSpec(4000, 16384), labels)
        self._nodes[name] = node
        return node

    def remove_node(self, name: str) -> None:
        """Drain and remove a node; its pods are terminated."""
        node = self._nodes.pop(name, None)
        if node is None:
            raise ValidationError(f"no node {name!r}")
        for pod in list(node.pods.values()):
            self.terminate_pod(pod.name)

    def node(self, name: str) -> Node:
        node = self._nodes.get(name)
        if node is None:
            raise ValidationError(f"no node {name!r}")
        return node

    @property
    def nodes(self) -> list[Node]:
        return [self._nodes[name] for name in sorted(self._nodes)]

    @property
    def node_names(self) -> list[str]:
        return sorted(self._nodes)

    def region_of(self, node_name: str) -> str | None:
        """The node's ``region`` label (multi-datacenter deployments).

        Unknown endpoint names (external clients, gateways) resolve to
        ``None`` — region-neutral.
        """
        node = self._nodes.get(node_name)
        return node.labels.get("region") if node is not None else None

    def nodes_in_regions(self, regions: tuple[str, ...] | list[str]) -> list[str]:
        """Node names whose ``region`` label is in ``regions``.

        Region names that no node carries raise :class:`SchedulingError`
        listing the known regions — a silent ``[]`` here used to surface
        much later as a confusing "no cluster node" failure.
        """
        wanted = set(regions)
        known = set(self.regions)
        unknown = wanted - known
        if unknown:
            raise SchedulingError(
                f"unknown region(s) {sorted(unknown)}; "
                f"known regions: {sorted(known)}"
            )
        return [
            name
            for name in sorted(self._nodes)
            if self._nodes[name].labels.get("region") in wanted
        ]

    @property
    def regions(self) -> tuple[str, ...]:
        """All distinct region labels present in the cluster."""
        return tuple(
            sorted(
                {
                    node.labels["region"]
                    for node in self._nodes.values()
                    if "region" in node.labels
                }
            )
        )

    # -- pods ----------------------------------------------------------------

    def bind_pod(self, spec: PodSpec, node_name: str, name: str | None = None) -> Pod:
        """Create a pod and bind it to ``node_name`` (scheduler output)."""
        node = self.node(node_name)
        if not node.can_fit(spec.resources):
            raise SchedulingError(
                f"pod does not fit on {node_name}: needs {spec.resources}, "
                f"free {node.allocatable}"
            )
        pod_name = name or f"{spec.image.replace('/', '-')}-{next(self._pod_seq)}"
        if pod_name in self._pods:
            raise ValidationError(f"pod {pod_name!r} already exists")
        pod = Pod(self.env, pod_name, spec, events=self.events)
        node.pods[pod_name] = pod
        self._pods[pod_name] = pod
        if self.events.enabled:
            self.events.record(
                "pod.bind", pod=pod_name, node=node_name, image=spec.image
            )
        pod._start(node_name)
        return pod

    def terminate_pod(self, name: str) -> None:
        pod = self._pods.pop(name, None)
        if pod is None:
            return
        if pod.node and pod.node in self._nodes:
            self._nodes[pod.node].pods.pop(name, None)
        if self.events.enabled:
            self.events.record("pod.terminated", pod=name, node=pod.node)
        pod._terminate()

    def pod(self, name: str) -> Pod | None:
        return self._pods.get(name)

    def pods_with_label(self, key: str, value: str) -> list[Pod]:
        return sorted(
            (
                pod
                for pod in self._pods.values()
                if pod.spec.labels.get(key) == value and pod.phase is not PodPhase.TERMINATED
            ),
            key=lambda p: p.name,
        )

    @property
    def pod_count(self) -> int:
        return len(self._pods)

    def total_capacity(self) -> ResourceSpec:
        total = ResourceSpec()
        for node in self._nodes.values():
            total = total + node.capacity
        return total

    def total_allocated(self) -> ResourceSpec:
        total = ResourceSpec()
        for node in self._nodes.values():
            total = total + node.allocated
        return total

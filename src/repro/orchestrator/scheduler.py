"""Pod placement.

Implements the two placement policies the platform uses:

* ``least-allocated`` (default, mirrors the Kubernetes default scoring)
  — spread pods across nodes, which maximizes aggregate headroom and is
  what the scalability experiment relies on.
* ``bin-pack`` — most-allocated-first, used by budget-constrained
  templates to minimize the number of billable nodes.
* ``pinned`` placements via a node-name hint, used by locality-aware
  class runtimes to co-locate function pods with their data partition.
"""

from __future__ import annotations

from repro.errors import SchedulingError
from repro.monitoring.events import EventLog
from repro.orchestrator.cluster import Cluster, Node
from repro.orchestrator.pod import Pod, PodSpec

__all__ = ["Scheduler"]


class Scheduler:
    """Chooses a node for each pod and binds it through the cluster."""

    POLICIES = ("least-allocated", "bin-pack")

    def __init__(
        self,
        cluster: Cluster,
        policy: str = "least-allocated",
        events: EventLog | None = None,
    ) -> None:
        if policy not in self.POLICIES:
            raise SchedulingError(
                f"unknown scheduling policy {policy!r}; expected one of {self.POLICIES}"
            )
        self.cluster = cluster
        self.policy = policy
        self.events = events if events is not None else EventLog(cluster.env)

    def _feasible(self, spec: PodSpec) -> list[Node]:
        return [node for node in self.cluster.nodes if node.can_fit(spec.resources)]

    def _score(self, node: Node) -> tuple:
        free = node.allocatable
        if self.policy == "least-allocated":
            # Prefer the emptiest node; tie-break by name for determinism.
            return (-free.cpu_millis, -free.memory_mb, node.name)
        # bin-pack: prefer the fullest node that still fits.
        return (free.cpu_millis, free.memory_mb, node.name)

    def select_node(self, spec: PodSpec, node_hint: str | None = None) -> str:
        """Pick a node name for ``spec`` without binding."""
        if node_hint is not None:
            node = self.cluster.node(node_hint)
            if not node.can_fit(spec.resources):
                raise SchedulingError(
                    f"hinted node {node_hint!r} cannot fit {spec.resources} "
                    f"(free {node.allocatable})"
                )
            return node_hint
        feasible = self._feasible(spec)
        if not feasible:
            raise SchedulingError(
                f"no node can fit {spec.resources}; cluster allocated "
                f"{self.cluster.total_allocated()} of {self.cluster.total_capacity()}"
            )
        return min(feasible, key=self._score).name

    def schedule(self, spec: PodSpec, node_hint: str | None = None, name: str | None = None) -> Pod:
        """Pick a node and bind a new pod to it."""
        node_name = self.select_node(spec, node_hint)
        pod = self.cluster.bind_pod(spec, node_name, name=name)
        if self.events.enabled:
            self.events.record(
                "scheduler.place",
                pod=pod.name,
                node=node_name,
                image=spec.image,
                policy="pinned" if node_hint is not None else self.policy,
            )
        return pod

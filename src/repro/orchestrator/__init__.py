"""Kubernetes-like container orchestrator substrate."""

from repro.orchestrator.cluster import Cluster, Node
from repro.orchestrator.deployment import Deployment
from repro.orchestrator.hpa import HorizontalPodAutoscaler
from repro.orchestrator.pod import Pod, PodPhase, PodSpec
from repro.orchestrator.resources import ResourceSpec
from repro.orchestrator.scheduler import Scheduler

__all__ = [
    "Cluster",
    "Node",
    "Deployment",
    "HorizontalPodAutoscaler",
    "Pod",
    "PodPhase",
    "PodSpec",
    "ResourceSpec",
    "Scheduler",
]

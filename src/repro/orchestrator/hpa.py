"""Horizontal pod autoscaler.

Periodically compares an observed metric (by default, in-flight
requests per replica) against a target and resizes the deployment,
with a stabilization window damping scale-down — the standard
Kubernetes HPA shape.  The Knative engine has its own autoscaler with
scale-to-zero; this one serves plain deployments (the ``oprc-bypass``
configurations).
"""

from __future__ import annotations

import math
from typing import Callable

from repro.errors import SchedulingError, ValidationError
from repro.monitoring.events import EventLog
from repro.orchestrator.deployment import Deployment
from repro.sim.kernel import Environment

__all__ = ["HorizontalPodAutoscaler"]


class HorizontalPodAutoscaler:
    """Concurrency-targeting autoscaler for a deployment."""

    def __init__(
        self,
        env: Environment,
        deployment: Deployment,
        target_per_replica: float,
        min_replicas: int = 1,
        max_replicas: int = 64,
        interval_s: float = 2.0,
        scale_down_stabilization_s: float = 30.0,
        metric_fn: Callable[[], float] | None = None,
        events: EventLog | None = None,
    ) -> None:
        if target_per_replica <= 0:
            raise ValidationError(f"target must be > 0, got {target_per_replica}")
        if min_replicas < 1:
            raise ValidationError(f"min_replicas must be >= 1, got {min_replicas}")
        if max_replicas < min_replicas:
            raise ValidationError("max_replicas must be >= min_replicas")
        self.env = env
        self.deployment = deployment
        self.target = target_per_replica
        self.min_replicas = min_replicas
        self.max_replicas = max_replicas
        self.interval_s = interval_s
        self.stabilization_s = scale_down_stabilization_s
        self.metric_fn = metric_fn or deployment.total_in_flight
        self.events = events if events is not None else EventLog(env)
        self.decisions = 0
        self._below_since: float | None = None
        self._running = True
        self._proc = env.process(self._run())

    def stop(self) -> None:
        """Stop ticking (the process exits at its next wake-up)."""
        self._running = False

    def desired_replicas(self) -> int:
        """Pure scaling decision from the current metric."""
        metric = max(0.0, float(self.metric_fn()))
        desired = math.ceil(metric / self.target) if metric > 0 else self.min_replicas
        return max(self.min_replicas, min(self.max_replicas, desired))

    def _run(self):
        while self._running:
            yield self.env.timeout(self.interval_s)
            if not self._running:
                return
            self.tick()

    def tick(self) -> None:
        """One scaling evaluation (exposed for deterministic tests)."""
        self.deployment.reconcile()
        desired = self.desired_replicas()
        current = self.deployment.replicas
        self.decisions += 1
        if desired > current:
            self._below_since = None
            try:
                self.deployment.scale(desired)
            except SchedulingError:
                # Cluster full: scale as far as it goes.
                pass
        elif desired < current:
            if self._below_since is None:
                self._below_since = self.env.now
            if self.env.now - self._below_since >= self.stabilization_s:
                self.deployment.scale(desired)
                self._below_since = None
        else:
            self._below_since = None
        if self.events.enabled and self.deployment.replicas != current:
            self.events.record(
                "autoscale.hpa",
                deployment=self.deployment.name,
                before=current,
                after=self.deployment.replicas,
                desired=desired,
            )

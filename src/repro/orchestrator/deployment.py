"""Deployments: replica-set management over the scheduler.

A deployment keeps ``replicas`` pods of one spec alive, spreads or pins
them per the scheduler policy, and offers least-loaded pod selection to
the engines routing requests onto it.
"""

from __future__ import annotations

import itertools

from repro.errors import SchedulingError
from repro.orchestrator.pod import Pod, PodPhase, PodSpec
from repro.orchestrator.scheduler import Scheduler
from repro.sim.kernel import Environment

__all__ = ["Deployment"]


class Deployment:
    """Maintains a fleet of identical pods."""

    def __init__(
        self,
        env: Environment,
        name: str,
        spec: PodSpec,
        scheduler: Scheduler,
        replicas: int = 1,
        node_hints: list[str] | None = None,
    ) -> None:
        self.env = env
        self.name = name
        self.spec = spec
        self.scheduler = scheduler
        self.node_hints = list(node_hints or [])
        self._hint_cycle = itertools.cycle(self.node_hints) if self.node_hints else None
        self._seq = itertools.count(1)
        self.pods: list[Pod] = []
        self.desired = 0
        self.scale_ups = 0
        self.scale_downs = 0
        self.replaced_pods = 0
        self.scale(replicas)

    @property
    def replicas(self) -> int:
        return len(self.pods)

    @property
    def ready_replicas(self) -> int:
        return sum(1 for pod in self.pods if pod.is_ready)

    def ready_pods(self) -> list[Pod]:
        return [pod for pod in self.pods if pod.is_ready]

    def total_in_flight(self) -> int:
        """Requests executing or queued across all replicas."""
        return sum(pod.in_flight for pod in self.pods)

    def _next_hint(self) -> str | None:
        """The next placement hint, skipping nodes that left the cluster.

        Hints are a *constraint*, not a preference: they carry the
        class's jurisdiction/placement decision.  When every hinted node
        has left the cluster the deployment refuses to place (raising
        :class:`SchedulingError`) rather than silently falling back to
        an unconstrained scheduler pick — a healed pod must never land
        outside its class's allowed nodes.
        """
        if not self._hint_cycle:
            return None
        live = set(self.scheduler.cluster.node_names)
        for _ in range(len(self.node_hints)):
            hint = next(self._hint_cycle)
            if hint in live:
                return hint
        raise SchedulingError(
            f"deployment {self.name!r}: every allowed node "
            f"{self.node_hints} has left the cluster"
        )

    def set_hints(self, node_hints: list[str]) -> None:
        """Replace the placement-hint set (cluster membership changed).

        Callers (the CRM / federation planner) keep hints current as
        nodes join and leave so reconcile-time replacements track the
        latest placement decision.
        """
        self.node_hints = list(node_hints)
        self._hint_cycle = itertools.cycle(self.node_hints) if self.node_hints else None

    def scale(self, replicas: int) -> None:
        """Adjust the desired replica count and converge toward it.

        Scale-up binds new pods (raising :class:`SchedulingError` if the
        cluster is full — callers may catch and settle for fewer);
        scale-down terminates the least-loaded pods first.
        """
        if replicas < 0:
            raise SchedulingError(f"cannot scale to {replicas} replicas")
        self.desired = replicas
        self._converge()

    def _converge(self) -> None:
        while len(self.pods) < self.desired:
            pod = self.scheduler.schedule(
                self.spec, node_hint=self._next_hint(), name=f"{self.name}-{next(self._seq)}"
            )
            self.pods.append(pod)
            self.scale_ups += 1
        if len(self.pods) > self.desired:
            victims = sorted(self.pods, key=lambda p: (p.in_flight, p.name))
            for pod in victims[: len(self.pods) - self.desired]:
                self.pods.remove(pod)
                self.scheduler.cluster.terminate_pod(pod.name)
                self.scale_downs += 1

    def reconcile(self) -> int:
        """Replace pods that died underneath us (node failures).

        Prunes TERMINATED pods and re-converges to the desired count;
        returns how many replacements were attempted.  A full cluster
        leaves the deployment below desired — the next reconcile retries.
        """
        dead = [pod for pod in self.pods if pod.phase is PodPhase.TERMINATED]
        for pod in dead:
            self.pods.remove(pod)
        self.replaced_pods += len(dead)
        try:
            self._converge()
        except SchedulingError:
            pass
        return len(dead)

    def least_loaded_pod(self, include_starting: bool = False) -> Pod | None:
        """The pod with the fewest in-flight requests.

        With ``include_starting`` a STARTING pod is eligible (requests
        queue on it and run once it's ready) — the activator's behaviour
        during a cold start.  Warm capacity is always preferred: a
        request only queues on a booting pod when every ready pod is
        already saturated past twice its concurrency, otherwise a burst
        arriving mid-scale-up would pile onto idle-but-cold pods and
        wait out their boot while warm slots sit free.
        """
        ready = [pod for pod in self.pods if pod.is_ready]
        starting = (
            [pod for pod in self.pods if pod.phase is PodPhase.STARTING]
            if include_starting
            else []
        )
        if ready:
            best = min(ready, key=lambda p: (p.in_flight, p.name))
            if not starting or best.in_flight < best.spec.concurrency * 2:
                return best
            spill = min(starting, key=lambda p: (p.in_flight, p.name))
            return spill if spill.in_flight < best.in_flight else best
        if starting:
            return min(starting, key=lambda p: (p.in_flight, p.name))
        return None

    def pods_on_node(self, node: str) -> list[Pod]:
        return [pod for pod in self.pods if pod.node == node]

    def delete(self) -> None:
        """Terminate every pod."""
        self.desired = 0
        for pod in self.pods:
            self.scheduler.cluster.terminate_pod(pod.name)
        self.pods.clear()

"""Exception hierarchy for the repro (Oparaca / OaaS) platform.

Every error raised by the platform derives from :class:`OaasError`, so
callers embedding the platform can catch one base type.  The hierarchy
mirrors the planes of the system: definition-time errors (package and
class validation), deployment-time errors (template selection, resource
provisioning), and invocation-time errors (routing, execution, storage).
"""

from __future__ import annotations


class OaasError(Exception):
    """Base class for all errors raised by the platform."""


class ValidationError(OaasError):
    """A package, class, function, or NFR definition is invalid."""


class PackageError(ValidationError):
    """A package file could not be parsed or resolved."""


class QueryError(ValidationError):
    """An object query is malformed: bad predicate syntax, an unknown or
    untyped key, a value that does not coerce to the key's declared
    type, or a cursor that does not match the query's ordering.
    Gateways map this to HTTP 400."""


class ClassResolutionError(ValidationError):
    """Inheritance resolution failed (unknown parent, cycle, conflict)."""


class UnknownClassError(OaasError):
    """A request referenced a class that is not deployed."""


class UnknownFunctionError(OaasError):
    """A request referenced a function not bound to the target class."""


class UnknownObjectError(OaasError):
    """A request referenced an object id that does not exist."""


class DeploymentError(OaasError):
    """Deploying a class runtime failed."""


class TemplateSelectionError(DeploymentError):
    """No class-runtime template matches the class requirements."""


class InsufficientResourcesError(DeploymentError):
    """The cluster cannot host the requested pods."""


class TransportError(OaasError):
    """A network-level exchange could not complete."""


class NetworkPartitionError(TransportError):
    """The source and destination are on different partition sides."""


class InvocationError(OaasError):
    """A function invocation failed."""


class InvocationTimeoutError(InvocationError):
    """An invocation exceeded its resilience-policy deadline."""


class ServiceUnavailableError(InvocationError):
    """No healthy replica could accept the request (all shed or down)."""


class RateLimitedError(InvocationError):
    """Admission control rejected the request (per-class token bucket or
    the platform concurrency ceiling).  Gateways map this to HTTP 429
    and carry a ``retry_after_s`` hint in the response body."""


class OverloadError(InvocationError):
    """Queued work was shed by the overload controller (brownout).  The
    request never executed; callers may resubmit once load subsides."""


class NoRouteError(OaasError):
    """An HTTP request matched no gateway route (method/path pair)."""


class JurisdictionError(InvocationError):
    """A request from one jurisdiction touched an object whose class is
    constrained to another.  Raised only when the federation plane is
    enabled and the request carries an origin zone; gateways map this to
    HTTP 451 and the rejection is counted into the class's
    ``jurisdiction`` NFR verdict."""


class MigrationError(OaasError):
    """A live object migration between zones could not complete (unknown
    target zone, no eligible node in the target zone, or a handoff
    precondition failed)."""


class FunctionExecutionError(InvocationError):
    """The user function raised an exception.

    The original exception is preserved as ``__cause__`` and its text in
    :attr:`detail` so that callers inspecting a completed invocation do
    not need to re-raise.
    """

    def __init__(self, message: str, detail: str = "") -> None:
        super().__init__(message)
        self.detail = detail


class DataflowError(InvocationError):
    """A dataflow (macro) definition or execution is invalid."""


class StorageError(OaasError):
    """A storage-layer operation failed."""


class KeyNotFoundError(StorageError):
    """The requested key does not exist in the store."""


class BucketNotFoundError(StorageError):
    """The requested object-storage bucket does not exist."""


class PresignedUrlError(StorageError):
    """A presigned URL failed verification (bad signature or expired)."""


class SnapshotNotFoundError(StorageError):
    """No snapshot generation satisfies a restore request (unknown
    generation, a point-in-time before the first cut, or an object that
    was never captured by any cut)."""


class ConcurrentModificationError(StorageError):
    """An optimistic-concurrency write lost the race (version mismatch)."""


class SchedulingError(OaasError):
    """The orchestrator could not place a pod."""


class MessagingError(OaasError):
    """A messaging (topic log) operation failed."""


class SimulationError(OaasError):
    """The discrete-event kernel was used incorrectly."""


class InternalError(OaasError):
    """An unexpected non-platform exception crossed the invoker boundary.

    Raw exceptions (``KeyError``, ``AttributeError``, ...) must never
    escape to callers; the engine wraps them so clients always receive a
    structured :class:`OaasError` payload.
    """

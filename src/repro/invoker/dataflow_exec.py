"""Dataflow (MACRO) execution.

Runs a :class:`~repro.model.dataflow.DataflowSpec` on behalf of one
object: steps are grouped into topological waves by their *data*
dependencies and each wave executes in parallel ("the platform handles
parallelism and data navigation in the background", §II-B).  Step
payloads are assembled by resolving ``${...}`` templates against the
macro input and earlier step outputs; a step targeting ``@<step-id>``
runs on the object *created* by that step.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from repro.errors import DataflowError
from repro.invoker.request import InvocationRequest, InvocationResult
from repro.model.cls import FunctionBinding
from repro.model.dataflow import MACRO_INPUT, SELF_TARGET, DataflowStep, resolve_template
from repro.model.resolver import ResolvedClass
from repro.object.obj import ObjectRecord
from repro.sim.kernel import all_of

if TYPE_CHECKING:  # pragma: no cover - circular import guard
    from repro.invoker.engine import InvocationEngine

__all__ = ["DataflowExecutor"]


class DataflowExecutor:
    """Executes MACRO bindings through the invocation engine."""

    def __init__(self, engine: "InvocationEngine") -> None:
        self.engine = engine
        self.macros_executed = 0
        self.steps_executed = 0

    def execute(
        self,
        request: InvocationRequest,
        resolved: ResolvedClass,
        binding: FunctionBinding,
        record: ObjectRecord,
        trace_id: str | None = None,
        root=None,
    ) -> Generator[Any, Any, InvocationResult]:
        """Run the macro; resolves to the macro-level result."""
        spec = binding.function.dataflow
        trace_id = trace_id or request.trace_id or request.request_id
        self.macros_executed += 1
        outputs: dict[str, Any] = {"input": dict(request.payload)}
        created: dict[str, str] = {}
        for wave in spec.waves():
            processes = [
                self.engine.env.process(
                    self._run_step(request, resolved, step, outputs, created, trace_id, root)
                )
                for step in wave
            ]
            results: list[InvocationResult] = yield all_of(self.engine.env, processes)
            for step, result in zip(wave, results):
                if not result.ok:
                    return InvocationResult.failure(
                        request,
                        f"dataflow step {step.id!r} ({step.function}) failed: "
                        f"{result.error}",
                        resolved_cls=resolved.name,
                        error_type=result.error_type or "DataflowError",
                    )
                outputs[step.id] = dict(result.output)
                if result.created_object_id is not None:
                    created[step.id] = result.created_object_id
        final_output: dict[str, Any] = {}
        created_id = None
        if spec.output is not None:
            final_output = dict(outputs.get(spec.output, {}))
            created_id = created.get(spec.output)
        return InvocationResult(
            request_id=request.request_id,
            cls=resolved.name,
            object_id=record.id,
            fn_name=binding.name,
            ok=True,
            output=final_output,
            created_object_id=created_id,
        )

    def _run_step(
        self,
        request: InvocationRequest,
        resolved: ResolvedClass,
        step: DataflowStep,
        outputs: dict[str, Any],
        created: dict[str, str],
        trace_id: str | None = None,
        root=None,
    ) -> Generator[Any, Any, InvocationResult]:
        self.steps_executed += 1
        trace_id = trace_id or request.request_id
        step_span = self.engine.tracer.start(
            trace_id, f"step {step.id}", parent=root, function=step.function
        )
        if step.target == SELF_TARGET:
            target_id = request.object_id
        else:
            source = step.target[1:]
            target_id = created.get(source)
            if target_id is None:
                raise DataflowError(
                    f"step {step.id!r} targets @{source}, but step {source!r} "
                    "did not create an object (is its binding missing "
                    "output_class?)"
                )
        payload: dict[str, Any] = {
            key: resolve_template(template, outputs) for key, template in step.args.items()
        }
        if step.inputs:
            payload["inputs"] = [
                dict(outputs["input"]) if ref == MACRO_INPUT else dict(outputs[ref])
                for ref in step.inputs
            ]
        sub_request = InvocationRequest(
            object_id=target_id,
            fn_name=step.function,
            payload=payload,
            internal=True,
            caller_cls=resolved.name,
            trace_id=trace_id,
            trace_parent=step_span.span_id if step_span else None,
        )
        result = yield self.engine.invoke(sub_request)
        self.engine.tracer.finish(step_span, ok=result.ok)
        return result

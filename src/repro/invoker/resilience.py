"""Data-plane resilience policies: the platform absorbing fault
tolerance so developers don't have to (§II-C's availability NFR made
operational).

A :class:`ResiliencePolicy` is derived per class from its declared NFRs
at deploy time and enforced by the invocation engine:

* **bounded retries** with exponential backoff + deterministic jitter on
  transport faults (partitions, unreachable owners) and deadline
  timeouts;
* **per-invocation deadlines** on the FaaS offload, derived from the
  declared latency target;
* a **circuit breaker** per (class, node): consecutive data-plane
  failures against one node open the breaker, and placement sheds
  traffic to healthy replicas until a half-open probe succeeds;
* **stale-read fallback**: persistent classes serve reads from the
  document store when every DHT owner is partitioned away.

Breaker transitions emit control-plane events and instantaneous trace
spans (under the synthetic ``"resilience"`` trace id), so every
defensive action the platform takes is auditable through the PR 1
observability surface.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass

from repro.errors import ValidationError
from repro.model.nfr import NonFunctionalRequirements
from repro.monitoring.events import EventLog
from repro.monitoring.tracing import Tracer
from repro.sim.kernel import Environment

#: Breaker-transition spans share one synthetic trace: they are
#: platform defense actions, not attributable to a single request.
RESILIENCE_TRACE_ID = "resilience"

__all__ = [
    "RESILIENCE_TRACE_ID",
    "ResiliencePolicy",
    "BreakerState",
    "CircuitBreaker",
    "BreakerBoard",
    "DEFAULT_POLICY",
]


@dataclass(frozen=True)
class ResiliencePolicy:
    """How hard the data plane defends one class's availability target.

    Attributes:
        max_retries: transport-fault retries per invocation (bounded;
            CAS conflicts retry separately under ``max_cas_retries``).
        backoff_base_s: delay before the first retry.
        backoff_factor: multiplier per further attempt.
        backoff_max_s: cap on any single backoff delay.
        backoff_jitter: extra random fraction (0.5 = up to +50%) drawn
            from a seeded stream, keeping retry storms decorrelated
            *and* deterministic.
        deadline_s: per-attempt FaaS offload deadline; ``None`` = wait
            forever (classes with no latency target).
        breaker_failure_threshold: consecutive failures against one
            node that open its breaker; ``None`` disables breakers.
        breaker_recovery_s: open-state hold time before a half-open
            probe is allowed through.
        stale_read_fallback: serve reads from the document store when
            every DHT owner is unreachable (persistent classes only).
    """

    max_retries: int = 2
    backoff_base_s: float = 0.02
    backoff_factor: float = 2.0
    backoff_max_s: float = 1.0
    backoff_jitter: float = 0.5
    deadline_s: float | None = None
    breaker_failure_threshold: int | None = 5
    breaker_recovery_s: float = 10.0
    stale_read_fallback: bool = True

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValidationError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base_s <= 0:
            raise ValidationError(
                f"backoff_base_s must be > 0, got {self.backoff_base_s}"
            )
        if self.backoff_factor < 1.0:
            raise ValidationError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.backoff_max_s < self.backoff_base_s:
            raise ValidationError(
                f"backoff_max_s ({self.backoff_max_s}) must be >= "
                f"backoff_base_s ({self.backoff_base_s})"
            )
        if not 0.0 <= self.backoff_jitter <= 1.0:
            raise ValidationError(
                f"backoff_jitter must be in [0, 1], got {self.backoff_jitter}"
            )
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValidationError(f"deadline_s must be > 0, got {self.deadline_s}")
        if self.breaker_failure_threshold is not None and self.breaker_failure_threshold < 1:
            raise ValidationError(
                f"breaker_failure_threshold must be >= 1, got "
                f"{self.breaker_failure_threshold}"
            )
        if self.breaker_recovery_s <= 0:
            raise ValidationError(
                f"breaker_recovery_s must be > 0, got {self.breaker_recovery_s}"
            )

    def backoff_s(self, attempt: int, rng: random.Random) -> float:
        """Delay before retry ``attempt`` (1-based), jittered."""
        raw = min(
            self.backoff_max_s,
            self.backoff_base_s * self.backoff_factor ** max(0, attempt - 1),
        )
        if self.backoff_jitter:
            raw *= 1.0 + self.backoff_jitter * rng.random()
        return raw

    @classmethod
    def from_nfr(
        cls, nfr: NonFunctionalRequirements, persistent: bool = True
    ) -> "ResiliencePolicy":
        """Derive the enforcement knobs from a class's declared NFRs.

        Tighter availability targets buy more retries and a more
        trigger-happy breaker; a declared latency target sets the
        offload deadline (generously above the p99 target, so cold
        starts don't trip it).
        """
        availability = nfr.qos.availability
        if availability is None:
            max_retries, threshold = 2, 5
        elif availability >= 0.9999:
            max_retries, threshold = 5, 3
        elif availability >= 0.999:
            max_retries, threshold = 4, 3
        elif availability >= 0.99:
            max_retries, threshold = 3, 4
        else:
            max_retries, threshold = 2, 5
        deadline_s = None
        recovery_s = 10.0
        if nfr.qos.latency_ms is not None:
            deadline_s = max(2.0, 25.0 * nfr.qos.latency_ms / 1000.0)
            recovery_s = 5.0
        return cls(
            max_retries=max_retries,
            deadline_s=deadline_s,
            breaker_failure_threshold=threshold,
            breaker_recovery_s=recovery_s,
            stale_read_fallback=persistent,
        )


#: Policy applied when a class's runtime declares nothing.
DEFAULT_POLICY = ResiliencePolicy()


class BreakerState(str, enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """Failure accounting for one (class, node) pair."""

    def __init__(self, threshold: int, recovery_s: float) -> None:
        self.threshold = threshold
        self.recovery_s = recovery_s
        self.state = BreakerState.CLOSED
        self.failures = 0
        self.opened_at: float | None = None
        self.opens = 0
        self.closes = 0


class BreakerBoard:
    """All circuit breakers of one invocation engine.

    Breakers are created lazily on the first recorded failure, so a
    healthy platform carries an empty dict and every check is a single
    truthiness branch.
    """

    def __init__(
        self,
        env: Environment,
        events: EventLog | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.env = env
        self.events = events
        self.tracer = tracer
        self._breakers: dict[tuple[str, str], CircuitBreaker] = {}

    @property
    def active(self) -> bool:
        """True once any breaker exists (the slow-path trigger)."""
        return bool(self._breakers)

    def get(self, cls: str, node: str) -> CircuitBreaker | None:
        return self._breakers.get((cls, node))

    def _effective_state(self, breaker: CircuitBreaker) -> BreakerState:
        """OPEN transitions to HALF_OPEN lazily when traffic checks the
        breaker; report that pending transition so a breaker whose
        recovery window elapsed no longer reads as shedding."""
        if (
            breaker.state is BreakerState.OPEN
            and breaker.opened_at is not None
            and self.env.now - breaker.opened_at >= breaker.recovery_s
        ):
            return BreakerState.HALF_OPEN
        return breaker.state

    def state(self, cls: str, node: str) -> str:
        breaker = self._breakers.get((cls, node))
        return self._effective_state(breaker).value if breaker else BreakerState.CLOSED.value

    def open_count(self) -> int:
        """How many breakers are actively shedding traffic right now."""
        return sum(
            1
            for b in self._breakers.values()
            if self._effective_state(b) is BreakerState.OPEN
        )

    def _emit(self, kind: str, cls: str, node: str, **fields) -> None:
        if self.events is not None:
            self.events.record(kind, cls=cls, node=node, **fields)
        if self.tracer is not None and self.tracer.enabled:
            span = self.tracer.start(
                RESILIENCE_TRACE_ID, kind, cls=cls, node=node, **fields
            )
            self.tracer.finish(span)

    def allow(self, cls: str, node: str) -> bool:
        """Whether placement may send traffic at ``node`` for ``cls``."""
        breaker = self._breakers.get((cls, node))
        if breaker is None or breaker.state is BreakerState.CLOSED:
            return True
        if breaker.state is BreakerState.OPEN:
            if (
                breaker.opened_at is not None
                and self.env.now - breaker.opened_at >= breaker.recovery_s
            ):
                breaker.state = BreakerState.HALF_OPEN
                self._emit("resilience.breaker_half_open", cls, node)
                return True
            return False
        return True  # HALF_OPEN: let the probe through

    def record_failure(self, cls: str, node: str, policy: ResiliencePolicy) -> None:
        if policy.breaker_failure_threshold is None:
            return
        breaker = self._breakers.get((cls, node))
        if breaker is None:
            breaker = CircuitBreaker(
                policy.breaker_failure_threshold, policy.breaker_recovery_s
            )
            self._breakers[(cls, node)] = breaker
        breaker.failures += 1
        if breaker.state is BreakerState.HALF_OPEN:
            # The probe failed: re-open and restart the recovery clock.
            breaker.state = BreakerState.OPEN
            breaker.opened_at = self.env.now
            breaker.opens += 1
            self._emit(
                "resilience.breaker_open", cls, node, failures=breaker.failures, probe=True
            )
        elif (
            breaker.state is BreakerState.CLOSED
            and breaker.failures >= breaker.threshold
        ):
            breaker.state = BreakerState.OPEN
            breaker.opened_at = self.env.now
            breaker.opens += 1
            self._emit(
                "resilience.breaker_open", cls, node, failures=breaker.failures
            )

    def record_success(self, cls: str, node: str) -> None:
        if not self._breakers:
            return
        breaker = self._breakers.get((cls, node))
        if breaker is None:
            return
        if breaker.state is BreakerState.HALF_OPEN:
            breaker.state = BreakerState.CLOSED
            breaker.failures = 0
            breaker.opened_at = None
            breaker.closes += 1
            self._emit("resilience.breaker_close", cls, node)
        elif breaker.state is BreakerState.CLOSED:
            breaker.failures = 0

    def snapshot(self) -> dict[str, str]:
        """Current (effective) state of every instantiated breaker."""
        return {
            f"{cls}@{node}": self._effective_state(breaker).value
            for (cls, node), breaker in sorted(self._breakers.items())
        }

"""The invocation data plane: routing, task offload, state commit."""

from repro.invoker.dataflow_exec import DataflowExecutor
from repro.invoker.engine import (
    BUILTIN_METHODS,
    InvocationEngine,
    RuntimeDirectory,
    make_object_id,
    split_object_id,
)
from repro.invoker.queue import AsyncInvoker
from repro.invoker.request import InvocationRequest, InvocationResult, new_request_id
from repro.invoker.router import ObjectRouter, PlacementPolicy

__all__ = [
    "DataflowExecutor",
    "InvocationEngine",
    "RuntimeDirectory",
    "make_object_id",
    "split_object_id",
    "BUILTIN_METHODS",
    "AsyncInvoker",
    "InvocationRequest",
    "InvocationResult",
    "new_request_id",
    "ObjectRouter",
    "PlacementPolicy",
]

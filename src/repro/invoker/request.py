"""Invocation request/result types — the platform's client-facing RPC."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = ["InvocationRequest", "InvocationResult", "new_request_id"]

_request_seq = itertools.count(1)


def new_request_id() -> str:
    return f"req-{next(_request_seq)}"


@dataclass(frozen=True)
class InvocationRequest:
    """A request to invoke ``fn_name`` on object ``object_id``.

    ``cls`` may be omitted (``None``) — the platform resolves the class
    from the object record, which is what enables polymorphism: invoking
    ``resize`` on a ``LabelledImage`` through an ``Image``-typed
    reference dispatches to the object's actual class.

    ``internal`` marks platform-originated calls (dataflow steps), which
    may reach INTERNAL/PRIVATE bindings; ``caller_cls`` carries the
    invoking class for PRIVATE checks.
    """

    object_id: str
    fn_name: str
    cls: str | None = None
    payload: Mapping[str, Any] = field(default_factory=dict)
    request_id: str = field(default_factory=new_request_id)
    internal: bool = False
    caller_cls: str | None = None
    #: Trace correlation: sub-invocations (dataflow steps) inherit the
    #: originating request's trace id and link to their step span.
    trace_id: str | None = None
    trace_parent: int | None = None
    #: Geo-routing: the client's zone of origin.  ``None`` (the default,
    #: and always the case without the federation plane) keeps the
    #: baseline routing and skips jurisdiction enforcement.
    origin_zone: str | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "payload", dict(self.payload))


@dataclass(frozen=True)
class InvocationResult:
    """The outcome of one invocation."""

    request_id: str
    cls: str
    object_id: str
    fn_name: str
    ok: bool
    output: Mapping[str, Any] = field(default_factory=dict)
    error: str | None = None
    error_type: str | None = None
    created_object_id: str | None = None
    latency_s: float = 0.0
    retries: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "output", dict(self.output))

    @classmethod
    def failure(
        cls,
        request: InvocationRequest,
        error: str,
        resolved_cls: str = "",
        latency_s: float = 0.0,
        retries: int = 0,
        error_type: str = "InvocationError",
    ) -> "InvocationResult":
        return cls(
            request_id=request.request_id,
            cls=resolved_cls or (request.cls or ""),
            object_id=request.object_id,
            fn_name=request.fn_name,
            ok=False,
            error=error,
            error_type=error_type,
            latency_s=latency_s,
            retries=retries,
        )

"""The invocation engine — Oparaca's data plane.

For every request it: resolves the target class (object ids are
prefixed ``Cls~suffix``, enabling polymorphic dispatch to the object's
*actual* class), routes to a handling node (per the class runtime's
placement policy), loads the object record from the class's DHT cache,
bundles state + payload into a pure-function
:class:`~repro.faas.runtime.InvocationTask`, offloads it to the bound
FaaS service, and commits the modified state back with optimistic
concurrency (compare-and-put on the record version, retrying the whole
load-execute-commit cycle on contention).

Per-class resources (DHT cache, router, deployed services) come from a
:class:`RuntimeDirectory` — implemented by the class runtime manager —
so every class runs on the runtime its template provisioned (§III-B).

It also provides the *builtin* object lifecycle — ``new``, ``get``,
``update``, ``delete``, ``file-url`` — which short-circuits the FaaS
engine, and dispatches MACRO bindings to the dataflow executor.
"""

from __future__ import annotations

import uuid
from typing import Any, Callable, Generator, Mapping, Protocol

from repro.errors import (
    ConcurrentModificationError,
    InvocationError,
    InvocationTimeoutError,
    KeyNotFoundError,
    OaasError,
    QueryError,
    TransportError,
    UnknownClassError,
    UnknownFunctionError,
    UnknownObjectError,
    ValidationError,
)
from repro.faas.engine import FunctionService
from repro.faas.runtime import InvocationTask, TaskCompletion
from repro.invoker.dataflow_exec import DataflowExecutor
from repro.invoker.request import InvocationRequest, InvocationResult
from repro.invoker.resilience import DEFAULT_POLICY, BreakerBoard, ResiliencePolicy
from repro.invoker.router import ObjectRouter
from repro.model.cls import AccessModifier, FunctionBinding
from repro.model.function import FunctionType
from repro.model.resolver import ResolvedClass
from repro.monitoring.collector import MonitoringSystem
from repro.monitoring.events import EventLog
from repro.monitoring.tracing import Span, Tracer
from repro.object.obj import ObjectRecord
from repro.sim.kernel import Environment, Process, any_of
from repro.sim.rng import RngStreams
from repro.storage.dht import Dht
from repro.storage.object_store import ObjectStore
from repro.storage.query import Query, QueryResult, evaluate_query

__all__ = [
    "InvocationEngine",
    "RuntimeDirectory",
    "BUILTIN_METHODS",
    "split_object_id",
    "STORAGE_TRACE_ID",
]

#: Synthetic trace id grouping storage-plane spans (queries), mirroring
#: the durability plane's ``DURABILITY_TRACE_ID``.
STORAGE_TRACE_ID = "storage"

BUILTIN_METHODS = ("new", "get", "update", "delete", "file-url")

#: Sentinel value an offload-deadline timeout resolves with.
_TIMED_OUT = object()

#: Separator between the class prefix and the unique suffix in object ids.
ID_SEPARATOR = "~"


def make_object_id(cls: str, suffix: str | None = None) -> str:
    """Compose a platform object id (``Image~a1b2...``)."""
    return f"{cls}{ID_SEPARATOR}{suffix or uuid.uuid4().hex}"


def split_object_id(object_id: str) -> tuple[str | None, str]:
    """Split an object id into (class, suffix); class is ``None`` when
    the id carries no prefix."""
    if ID_SEPARATOR in object_id:
        cls, _, suffix = object_id.partition(ID_SEPARATOR)
        return cls or None, suffix
    return None, object_id


class RuntimeDirectory(Protocol):
    """What the engine needs to know about deployed class runtimes."""

    def resolved(self, cls: str) -> ResolvedClass:
        """The flattened class, raising ``UnknownClassError`` if absent."""

    def dht_for(self, cls: str) -> Dht:
        """The class runtime's structured-state cache."""

    def router_for(self, cls: str) -> ObjectRouter:
        """The class runtime's placement router."""

    def service_for(self, cls: str, fn_name: str) -> FunctionService:
        """The FaaS service realizing one method of the class."""

    def deployed_classes(self) -> tuple[str, ...]:
        """Names of deployed classes (for error messages)."""


class InvocationEngine:
    """Executes invocation requests against deployed class runtimes."""

    def __init__(
        self,
        env: Environment,
        directory: RuntimeDirectory,
        object_store: ObjectStore,
        monitoring: MonitoringSystem,
        bucket: str = "oparaca",
        max_cas_retries: int = 4,
        tracer: Tracer | None = None,
        rng: RngStreams | None = None,
        events: EventLog | None = None,
    ) -> None:
        self.env = env
        self.directory = directory
        self.object_store = object_store
        self.monitoring = monitoring
        self.bucket = bucket
        self.max_cas_retries = max_cas_retries
        # Explicit None check: an empty Tracer is falsy (it has __len__).
        self.tracer = tracer if tracer is not None else Tracer(env)
        self.events = events if events is not None else EventLog(env)
        self._retry_rng = (rng or RngStreams(0)).stream("resilience")
        self.breakers = BreakerBoard(env, events=self.events, tracer=self.tracer)
        # Directories without per-class policies (test doubles) fall back
        # to DEFAULT_POLICY; resolved once so the hot path stays cheap.
        self._policy_source = getattr(directory, "policy_for", None)
        #: Federation plane hook (geo-routing + jurisdiction gate);
        #: installed by the platform only when the plane is enabled.
        self.federation: Any | None = None
        self.object_store.create_bucket(bucket)
        self._dataflow = DataflowExecutor(self)
        self.invocations = 0
        self.cas_conflicts = 0
        self.fault_retries = 0
        self.timeouts = 0
        self.stale_reads = 0
        self.internal_errors = 0

    # -- public API -------------------------------------------------------------

    def invoke(self, request: InvocationRequest) -> Process:
        """Run a request; resolves to an :class:`InvocationResult`.

        Application-level problems (unknown object, failed handler,
        access violations) become error results, never exceptions.
        """
        return self.env.process(self._invoke(request))

    def _invoke(self, request: InvocationRequest) -> Generator[Any, Any, InvocationResult]:
        self.invocations += 1
        started = self.env.now
        trace_id = request.trace_id or request.request_id
        root = self.tracer.start(
            trace_id,
            f"invoke {request.fn_name}",
            parent=request.trace_parent,
            object_id=request.object_id,
        )
        try:
            result = yield from self._dispatch(request, trace_id, root)
        except OaasError as exc:
            result = InvocationResult.failure(
                request, str(exc), error_type=type(exc).__name__
            )
        except Exception as exc:  # noqa: BLE001 - the invoker boundary
            # No raw exception may escape to callers: everything surfaces
            # as a structured error result (gateway maps it to a 500).
            self.internal_errors += 1
            result = InvocationResult.failure(
                request,
                f"internal platform error: {type(exc).__name__}: {exc}",
                error_type="InternalError",
            )
        latency = self.env.now - started
        # Failures raised before the record loaded carry no class; fall
        # back to the request / id prefix so per-class availability
        # accounting sees them (a lost object still counts against its
        # class's error rate).
        cls = result.cls or request.cls or split_object_id(request.object_id)[0]
        result = InvocationResult(
            request_id=result.request_id,
            cls=cls,
            object_id=result.object_id,
            fn_name=result.fn_name,
            ok=result.ok,
            output=result.output,
            error=result.error,
            error_type=result.error_type,
            created_object_id=result.created_object_id,
            latency_s=latency,
            retries=result.retries,
        )
        self.tracer.finish(root, ok=result.ok, cls=result.cls, retries=result.retries)
        if result.cls:
            self.monitoring.for_class(result.cls).record_invocation(latency, result.ok)
        return result

    # -- dispatch -----------------------------------------------------------------

    def _dispatch(
        self,
        request: InvocationRequest,
        trace_id: str | None = None,
        root: Span | None = None,
    ) -> Generator[Any, Any, InvocationResult]:
        trace_id = trace_id or request.trace_id or request.request_id
        yield from self._geo_admit(request)
        if request.fn_name == "new":
            return (yield from self._builtin_new(request))
        record = yield from self._load_record(request, trace_id, root)
        resolved = self.directory.resolved(record.cls)
        if request.cls is not None and not resolved.is_subclass_of(request.cls):
            raise InvocationError(
                f"object {request.object_id!r} is a {record.cls!r}, which is "
                f"not a subtype of the requested class {request.cls!r}"
            )
        binding = resolved.binding(request.fn_name)
        if binding is None:
            if request.fn_name in BUILTIN_METHODS:
                return (yield from self._builtin(request, resolved, record))
            raise UnknownFunctionError(
                f"class {resolved.name!r} has no function {request.fn_name!r}; "
                f"available: {list(resolved.method_names)}"
            )
        self._check_access(request, resolved, binding)
        if binding.function.ftype is FunctionType.MACRO:
            return (
                yield from self._dataflow.execute(
                    request, resolved, binding, record, trace_id, root
                )
            )
        if binding.function.ftype is FunctionType.BUILTIN:
            return (yield from self._builtin(request, resolved, record))
        return (
            yield from self._invoke_task(request, resolved, binding, record, trace_id, root)
        )

    def _check_access(
        self, request: InvocationRequest, resolved: ResolvedClass, binding: FunctionBinding
    ) -> None:
        if binding.access is AccessModifier.PUBLIC:
            return
        if not request.internal:
            raise InvocationError(
                f"{resolved.name}.{binding.name} is {binding.access.value} and "
                "cannot be invoked externally"
            )
        if binding.access is AccessModifier.PRIVATE:
            caller = request.caller_cls
            if caller is None or not self.directory.resolved(caller).is_subclass_of(
                resolved.name
            ):
                raise InvocationError(
                    f"{resolved.name}.{binding.name} is PRIVATE; caller "
                    f"{caller!r} is not in its class hierarchy"
                )

    # -- record access --------------------------------------------------------------

    def _target_class(self, request: InvocationRequest) -> str:
        cls, _ = split_object_id(request.object_id)
        cls = cls or request.cls
        if cls is None:
            raise InvocationError(
                f"cannot determine the class of object {request.object_id!r}; "
                "pass cls explicitly or use platform-generated ids"
            )
        return cls

    # -- resilience enforcement ------------------------------------------------------

    def _policy_for(self, cls: str) -> ResiliencePolicy:
        if self._policy_source is None:
            return DEFAULT_POLICY
        return self._policy_source(cls)

    def _geo_admit(self, request: InvocationRequest) -> Generator[Any, Any, None]:
        """Federation gate: enforce the target class's jurisdiction
        constraint against the request's origin zone and pay the client
        leg to the serving replica.  A no-op (zero yields, zero time)
        without the plane or without an origin zone."""
        fed = self.federation
        if fed is None or request.origin_zone is None:
            return
        cls = self._target_class(request)
        resolved = self.directory.resolved(cls)
        dht = self.directory.dht_for(resolved.name)
        leg = fed.admit(
            request.origin_zone,
            resolved.name,
            resolved.nfr.constraint.jurisdictions,
            dht,
            request.object_id,
        )
        if leg > 0:
            yield self.env.timeout(leg)

    def _place(
        self,
        cls: str,
        dht: Dht,
        object_id: str,
        exclude: set[str],
        origin_zone: str | None = None,
    ) -> str:
        """The router's choice, shed away from excluded/broken nodes.

        The fast path (no breakers instantiated, nothing excluded) is
        exactly ``router.place`` — or, with the federation plane and an
        origin zone, the eligible replica nearest to that zone.
        Otherwise candidates are scanned in preference order — routed
        node, then the object's owners, then any member — skipping nodes
        already failed this request and nodes with an open breaker.
        """
        router = self.directory.router_for(cls)
        fed = self.federation
        if not exclude and not self.breakers.active:
            if fed is not None and origin_zone is not None:
                return fed.route(dht, object_id, origin_zone)
            return router.place(object_id)
        primary = router.place(object_id)
        fallback: str | None = None
        seen: set[str] = set()
        for node in (primary, *dht.owners(object_id), *dht.nodes):
            if node in seen:
                continue
            seen.add(node)
            if node in exclude:
                continue
            if fallback is None:
                fallback = node
            if self.breakers.allow(cls, node):
                if node != primary:
                    self.events.record(
                        "resilience.shed", cls=cls, avoided=primary, node=node
                    )
                return node
        if fallback is not None:
            # Every non-excluded node has an open breaker: probe the
            # first one rather than refusing outright.
            return fallback
        return primary

    def _fault_retry(
        self,
        cls: str,
        caller: str,
        policy: ResiliencePolicy,
        exc: OaasError,
        exclude: set[str],
        attempt: int,
        trace_id: str | None,
        parent: Span | None,
    ) -> Generator[Any, Any, bool]:
        """Account one data-plane fault; yields the backoff delay and
        returns whether the caller should retry."""
        self.breakers.record_failure(cls, caller, policy)
        exclude.add(caller)
        if isinstance(exc, InvocationTimeoutError):
            self.timeouts += 1
            self.events.record(
                "resilience.timeout", cls=cls, node=caller, deadline_s=policy.deadline_s
            )
        if attempt > policy.max_retries:
            self.events.record(
                "resilience.exhausted",
                cls=cls,
                node=caller,
                attempts=attempt,
                error=type(exc).__name__,
            )
            return False
        self.fault_retries += 1
        delay = policy.backoff_s(attempt, self._retry_rng)
        self.events.record(
            "resilience.retry",
            cls=cls,
            node=caller,
            attempt=attempt,
            error=type(exc).__name__,
        )
        span = self.tracer.start(
            trace_id,
            "resilience.retry",
            parent=parent,
            node=caller,
            attempt=attempt,
            error=type(exc).__name__,
        )
        yield self.env.timeout(delay)
        self.tracer.finish(span)
        return True

    def _offload_with_deadline(
        self, service: FunctionService, task: InvocationTask, policy: ResiliencePolicy
    ) -> Generator[Any, Any, TaskCompletion]:
        """Offload to the FaaS service, bounded by the policy deadline."""
        proc = service.invoke(task)
        if policy.deadline_s is None:
            completion = yield proc
            return completion
        _, value = yield any_of(
            self.env, [proc, self.env.timeout(policy.deadline_s, _TIMED_OUT)]
        )
        if value is _TIMED_OUT:
            raise InvocationTimeoutError(
                f"{service.name}: no completion within {policy.deadline_s}s deadline"
            )
        return value

    def _stale_fallback(
        self,
        cls: str,
        dht: Dht,
        request: InvocationRequest,
        trace_id: str | None,
        parent: Span | None,
    ) -> Generator[Any, Any, dict[str, Any] | None]:
        """Graceful degradation: read the durable copy when every DHT
        owner is unreachable.  Returns ``None`` when no durable tier
        exists (ephemeral classes degrade to failure)."""
        if dht.store is None or not dht.model.persistent:
            return None
        span = self.tracer.start(
            trace_id or request.request_id, "state.stale_read", parent=parent
        )
        doc = yield dht.stale_get(request.object_id)
        self.tracer.finish(span, hit=doc is not None)
        if doc is not None:
            self.stale_reads += 1
            self.events.record(
                "resilience.stale_read", cls=cls, object=request.object_id
            )
        return doc

    def _load_record(
        self,
        request: InvocationRequest,
        trace_id: str | None = None,
        parent: Span | None = None,
        policy: ResiliencePolicy | None = None,
        exclude: set[str] | None = None,
        fresh: bool = False,
    ) -> Generator[Any, Any, ObjectRecord]:
        cls = self._target_class(request)
        resolved = self.directory.resolved(cls)
        dht = self.directory.dht_for(resolved.name)
        if policy is None:
            policy = self._policy_for(resolved.name)
        if exclude is None:
            exclude = set()
        attempt = 0
        while True:
            route_span = self.tracer.start(
                trace_id or request.request_id, "route", parent=parent
            )
            caller = self._place(
                resolved.name, dht, request.object_id, exclude,
                origin_zone=request.origin_zone,
            )
            self.tracer.finish(route_span, node=caller, cls=resolved.name)
            span = self.tracer.start(
                trace_id or request.request_id, "state.load", parent=parent, node=caller
            )
            try:
                dht.network.check_path(None, caller)
                doc = yield dht.get(request.object_id, caller=caller, fresh=fresh)
            except TransportError as exc:
                self.tracer.finish(span, ok=False, error=type(exc).__name__)
                attempt += 1
                retry = yield from self._fault_retry(
                    resolved.name, caller, policy, exc, exclude, attempt, trace_id, parent
                )
                if retry:
                    continue
                if policy.stale_read_fallback:
                    doc = yield from self._stale_fallback(
                        resolved.name, dht, request, trace_id, parent
                    )
                    if doc is not None:
                        return ObjectRecord.from_doc(doc)
                raise
            self.breakers.record_success(resolved.name, caller)
            self.tracer.finish(
                span, hit=doc is not None, owner=dht.owner(request.object_id)
            )
            if doc is None:
                raise UnknownObjectError(f"no object {request.object_id!r}")
            return ObjectRecord.from_doc(doc)

    # -- the pure-function task path ---------------------------------------------------

    def _invoke_task(
        self,
        request: InvocationRequest,
        resolved: ResolvedClass,
        binding: FunctionBinding,
        record: ObjectRecord,
        trace_id: str | None = None,
        root: Span | None = None,
    ) -> Generator[Any, Any, InvocationResult]:
        service = self.directory.service_for(resolved.name, binding.name)
        dht = self.directory.dht_for(resolved.name)
        policy = self._policy_for(resolved.name)
        trace_id = trace_id or request.request_id
        retries = 0
        fault_attempts = 0
        exclude: set[str] = set()
        while True:
            caller = self._place(
                resolved.name, dht, request.object_id, exclude,
                origin_zone=request.origin_zone,
            )
            offload = self.tracer.start(
                trace_id, f"task.offload {service.name}", parent=root
            )
            task = self._build_task(request, binding, record, trace_id, offload)
            try:
                dht.network.check_path(None, caller)
                completion: TaskCompletion = yield from self._offload_with_deadline(
                    service, task, policy
                )
            except (TransportError, InvocationTimeoutError) as exc:
                self.tracer.finish(offload, ok=False, error=type(exc).__name__)
                fault_attempts += 1
                retries += 1
                retry = yield from self._fault_retry(
                    resolved.name, caller, policy, exc, exclude, fault_attempts,
                    trace_id, root,
                )
                if retry:
                    continue
                return InvocationResult.failure(
                    request,
                    str(exc),
                    resolved_cls=resolved.name,
                    retries=retries,
                    error_type=type(exc).__name__,
                )
            self.breakers.record_success(resolved.name, caller)
            self.tracer.finish(offload, ok=completion.ok)
            if not completion.ok:
                return InvocationResult.failure(
                    request,
                    completion.error,
                    resolved_cls=resolved.name,
                    retries=retries,
                    error_type="FunctionExecutionError",
                )
            if binding.mutable and (completion.state_updates or completion.file_updates):
                commit_span = self.tracer.start(trace_id, "state.commit", parent=root)
                try:
                    record = yield from self._commit(
                        resolved, dht, record, completion, caller
                    )
                    self.tracer.finish(commit_span, ok=True)
                except ConcurrentModificationError:
                    self.tracer.finish(commit_span, ok=False, conflict=True)
                    self.cas_conflicts += 1
                    retries += 1
                    if retries > self.max_cas_retries:
                        return InvocationResult.failure(
                            request,
                            f"object {record.id!r} is too contended: "
                            f"{retries} failed commit attempts",
                            resolved_cls=resolved.name,
                            retries=retries,
                            error_type="ConcurrentModificationError",
                        )
                    # fresh=True: a CAS conflict means our copy was stale;
                    # a near-cache re-read could hand the same stale
                    # version straight back and spin the retry loop.
                    record = yield from self._load_record(
                        request, trace_id, root, policy=policy, fresh=True
                    )
                    continue
                except TransportError as exc:
                    # The commit never reached an owner: retry the whole
                    # load-execute-commit cycle (at-least-once semantics,
                    # like a CAS conflict).
                    self.tracer.finish(commit_span, ok=False, error=type(exc).__name__)
                    fault_attempts += 1
                    retries += 1
                    retry = yield from self._fault_retry(
                        resolved.name, caller, policy, exc, exclude, fault_attempts,
                        trace_id, root,
                    )
                    if retry:
                        record = yield from self._load_record(
                            request, trace_id, root, policy=policy, exclude=set(exclude)
                        )
                        continue
                    return InvocationResult.failure(
                        request,
                        str(exc),
                        resolved_cls=resolved.name,
                        retries=retries,
                        error_type=type(exc).__name__,
                    )
            created_id = None
            if binding.output_class is not None:
                created_id = yield from self._materialize_output(
                    binding.output_class, completion
                )
            return InvocationResult(
                request_id=request.request_id,
                cls=resolved.name,
                object_id=record.id,
                fn_name=binding.name,
                ok=True,
                output=completion.output,
                created_object_id=created_id,
                retries=retries,
            )

    def _build_task(
        self,
        request: InvocationRequest,
        binding: FunctionBinding,
        record: ObjectRecord,
        trace_id: str | None = None,
        span: Span | None = None,
    ) -> InvocationTask:
        file_urls = {
            key: self.object_store.presign(self.bucket, object_key, "GET")
            for key, object_key in record.files.items()
        }
        return InvocationTask(
            request_id=request.request_id,
            cls=record.cls,
            object_id=record.id,
            fn_name=binding.name,
            image=binding.function.image,
            payload=request.payload,
            state=record.state,
            file_urls=file_urls,
            immutable=not binding.mutable,
            trace_id=trace_id if span is not None else None,
            trace_parent=span.span_id if span is not None else None,
        )

    def _commit(
        self,
        resolved: ResolvedClass,
        dht: Dht,
        record: ObjectRecord,
        completion: TaskCompletion,
        caller: str,
    ) -> Generator[Any, Any, ObjectRecord]:
        resolved.state.validate_state(dict(completion.state_updates))
        for key in completion.file_updates:
            spec = resolved.state.get(key)
            if spec is None or not spec.is_file:
                raise ValidationError(
                    f"function updated file key {key!r}, which is not a FILE "
                    f"state key of class {resolved.name!r}"
                )
        updated = record.with_updates(completion.state_updates, completion.file_updates)
        yield dht.compare_and_put(
            updated.to_doc(), expected_version=record.version, caller=caller
        )
        return updated

    def _materialize_output(
        self, output_cls: str, completion: TaskCompletion
    ) -> Generator[Any, Any, str]:
        resolved = self.directory.resolved(output_cls)
        state = dict(resolved.state.defaults())
        for key, value in completion.output.items():
            spec = resolved.state.get(key)
            if spec is not None and not spec.is_file:
                state[key] = value
        resolved.state.validate_state(state)
        object_id = make_object_id(output_cls)
        record = ObjectRecord(id=object_id, cls=output_cls, version=1, state=state)
        dht = self.directory.dht_for(output_cls)
        caller = self.directory.router_for(output_cls).place(object_id)
        yield dht.put(record.to_doc(), caller=caller)
        return record.id

    # -- catalog ----------------------------------------------------------------------

    def list_objects(self, cls: str) -> list[str]:
        """Ids of every live object of ``cls`` (not subclasses)."""
        self.directory.resolved(cls)  # raises UnknownClassError if absent
        return self.directory.dht_for(cls).scan_ids()

    def query_objects(self, cls: str, query: Query) -> Process:
        """Run a typed query over the objects of ``cls``; the process
        resolves to a :class:`~repro.storage.query.QueryResult`.

        Persistent classes answer from the store backend (flushing the
        write-behind queue first so every acknowledged commit is
        visible); ephemeral classes scan the DHT's resident records with
        the same reference evaluator, so the query surface works either
        way — only the plan differs.
        """
        return self.env.process(self._query_objects(cls, query))

    def _query_objects(
        self, cls: str, query: Query
    ) -> Generator[Any, Any, QueryResult]:
        resolved = self.directory.resolved(cls)
        wanted = {pred.key for pred in query.where}
        if query.order_by is not None:
            wanted.add(query.order_by)
        for key in sorted(wanted):
            spec = resolved.state.get(key)
            if spec is None:
                raise QueryError(
                    f"class {cls!r} declares no state key {key!r}"
                )
            if spec.is_file:
                raise QueryError(
                    f"state key {key!r} of class {cls!r} is a FILE key; "
                    "file keys are not queryable"
                )
        dht = self.directory.dht_for(cls)
        span = None
        if self.tracer.enabled:
            span = self.tracer.start(
                STORAGE_TRACE_ID,
                "storage.query",
                cls=cls,
                predicates=len(query.where),
            )
        if dht.store is not None and dht.model.persistent:
            # Queued write-behind buffers hold acknowledged commits the
            # backend has not seen yet; drain them so the query observes
            # every acknowledged write (read-your-writes at the surface).
            yield dht.flush_all()
            result = yield dht.store.query(dht.collection, query)
        else:
            docs = (dht.peek(key) for key in dht.scan_ids())
            result = evaluate_query(
                (doc for doc in docs if doc is not None), query, plan="memory-scan"
            )
        self.events.record(
            "storage.query",
            cls=cls,
            matched=len(result.docs),
            scanned=result.scanned,
            index_used=result.index_used,
            plan=result.plan,
        )
        self.tracer.finish(
            span,
            matched=len(result.docs),
            scanned=result.scanned,
            index_used=result.index_used,
        )
        return result

    # -- file attachment (platform-internal) ----------------------------------------------

    def attach_file(self, object_id: str, key: str, object_key: str) -> Process:
        """Commit a FILE state-key mapping after an out-of-band upload."""
        return self.env.process(self._attach_file(object_id, key, object_key))

    def _attach_file(self, object_id: str, key: str, object_key: str) -> Generator:
        request = InvocationRequest(object_id=object_id, fn_name="file-url")
        for _ in range(self.max_cas_retries + 1):
            record = yield from self._load_record(request)
            resolved = self.directory.resolved(record.cls)
            spec = resolved.state.get(key)
            if spec is None or not spec.is_file:
                raise ValidationError(f"{record.cls!r} has no FILE state key {key!r}")
            dht = self.directory.dht_for(resolved.name)
            caller = self.directory.router_for(resolved.name).place(object_id)
            updated = record.with_updates(file_updates={key: object_key})
            try:
                yield dht.compare_and_put(
                    updated.to_doc(), expected_version=record.version, caller=caller
                )
                return updated
            except ConcurrentModificationError:
                self.cas_conflicts += 1
        raise InvocationError(f"object {object_id!r} too contended to attach file")

    # -- builtins ----------------------------------------------------------------------

    def _builtin_new(self, request: InvocationRequest) -> Generator[Any, Any, InvocationResult]:
        cls = request.cls or split_object_id(request.object_id)[0]
        if cls is None:
            raise InvocationError("'new' requires an explicit class")
        resolved = self.directory.resolved(cls)
        state = dict(resolved.state.defaults())
        overrides = dict(request.payload.get("state", {}))
        resolved.state.validate_state(overrides)
        state.update(overrides)
        requested = request.payload.get("id") or (request.object_id or None)
        if requested:
            prefix, suffix = split_object_id(str(requested))
            if prefix is not None and prefix != resolved.name:
                raise InvocationError(
                    f"id {requested!r} carries class prefix {prefix!r}, but the "
                    f"object is being created as {resolved.name!r}"
                )
            object_id = make_object_id(resolved.name, suffix)
        else:
            object_id = make_object_id(resolved.name)
        dht = self.directory.dht_for(resolved.name)
        caller = self._place(
            resolved.name, dht, object_id, set(), origin_zone=request.origin_zone
        )
        existing = yield dht.get(object_id, caller=caller)
        if existing is not None:
            raise InvocationError(f"object {object_id!r} already exists")
        record = ObjectRecord(id=object_id, cls=resolved.name, version=1, state=state)
        yield dht.put(record.to_doc(), caller=caller)
        return InvocationResult(
            request_id=request.request_id,
            cls=resolved.name,
            object_id=object_id,
            fn_name="new",
            ok=True,
            output={"id": object_id},
            created_object_id=object_id,
        )

    def _resilient_mutation(
        self,
        cls: str,
        dht: Dht,
        object_id: str,
        operation: "Callable[[str], Process]",
        origin_zone: str | None = None,
    ) -> Generator[Any, Any, Any]:
        """Run a builtin DHT mutation under the class's retry policy."""
        policy = self._policy_for(cls)
        exclude: set[str] = set()
        attempt = 0
        while True:
            caller = self._place(cls, dht, object_id, exclude, origin_zone=origin_zone)
            try:
                dht.network.check_path(None, caller)
                result = yield operation(caller)
                self.breakers.record_success(cls, caller)
                return result
            except TransportError as exc:
                attempt += 1
                retry = yield from self._fault_retry(
                    cls, caller, policy, exc, exclude, attempt, None, None
                )
                if not retry:
                    raise

    def _builtin(
        self, request: InvocationRequest, resolved: ResolvedClass, record: ObjectRecord
    ) -> Generator[Any, Any, InvocationResult]:
        fn = request.fn_name

        def ok(output: Mapping[str, Any]) -> InvocationResult:
            return InvocationResult(
                request_id=request.request_id,
                cls=resolved.name,
                object_id=record.id,
                fn_name=fn,
                ok=True,
                output=output,
            )

        if fn == "get":
            return ok(
                {
                    "id": record.id,
                    "cls": record.cls,
                    "version": record.version,
                    "state": dict(record.state),
                    "files": dict(record.files),
                }
            )
        dht = self.directory.dht_for(resolved.name)
        if fn == "update":
            updates = dict(request.payload.get("state", {}))
            resolved.state.validate_state(updates)
            updated = record.with_updates(updates)
            yield from self._resilient_mutation(
                resolved.name,
                dht,
                record.id,
                lambda caller: dht.compare_and_put(
                    updated.to_doc(), expected_version=record.version, caller=caller
                ),
                origin_zone=request.origin_zone,
            )
            return ok({"version": updated.version})
        if fn == "delete":
            yield from self._resilient_mutation(
                resolved.name,
                dht,
                record.id,
                lambda caller: dht.delete(record.id, caller=caller),
                origin_zone=request.origin_zone,
            )
            for object_key in record.files.values():
                try:
                    self.object_store.delete_object(self.bucket, object_key)
                except KeyNotFoundError:
                    # A never-uploaded or already-removed file key is not
                    # an error for the object deletion as a whole.
                    pass
            return ok({"deleted": record.id})
        if fn == "file-url":
            key = request.payload.get("key")
            method = str(request.payload.get("method", "GET")).upper()
            spec = resolved.state.get(key) if key else None
            if spec is None or not spec.is_file:
                raise ValidationError(
                    f"{resolved.name!r} has no FILE state key {key!r}"
                )
            if method == "GET":
                object_key = record.files.get(key)
                if object_key is None:
                    raise UnknownObjectError(
                        f"object {record.id!r} has no file for key {key!r} yet"
                    )
                return ok({"url": self.object_store.presign(self.bucket, object_key, "GET")})
            if method == "PUT":
                object_key = f"{record.cls}/{record.id}/{key}/v{record.version + 1}"
                url = self.object_store.presign(self.bucket, object_key, "PUT")
                return ok({"url": url, "object_key": object_key})
            raise ValidationError(f"file-url method must be GET or PUT, got {method!r}")
        raise UnknownFunctionError(f"unknown builtin {fn!r}")

"""Object routing: which node's invoker handles a request.

The OaaS optimization opportunity from §II-A: because the platform
knows which object a method call touches, it can "proactively
distribute [data] across the platform instances close to the deployed
method".  Concretely, the locality-aware policy routes each invocation
to the node that *owns the object's DHT partition*, turning the state
round trips into loopback traffic.  The alternative policies are the
baselines the ABL-LOCALITY ablation compares against.
"""

from __future__ import annotations

import enum
import itertools

from repro.errors import ValidationError
from repro.sim.rng import RngStreams
from repro.storage.dht import Dht

__all__ = ["PlacementPolicy", "ObjectRouter"]


class PlacementPolicy(str, enum.Enum):
    #: Route to the node owning the object's partition (data locality).
    LOCALITY = "LOCALITY"
    #: Spread requests over nodes regardless of data placement.
    ROUND_ROBIN = "ROUND_ROBIN"
    #: Uniform random node (a stateless load balancer).
    RANDOM = "RANDOM"


class ObjectRouter:
    """Chooses the handling node for each invocation."""

    def __init__(
        self,
        dht: Dht,
        policy: PlacementPolicy = PlacementPolicy.LOCALITY,
        rng: RngStreams | None = None,
    ) -> None:
        self.dht = dht
        self.policy = policy
        self._members = self.dht.nodes
        self._cycle = itertools.cycle(self._members)
        self._rng = (rng or RngStreams(0)).stream("router")
        self.routed = 0
        self.local_hits = 0

    def refresh(self) -> None:
        """Re-read DHT membership (after node failures or joins)."""
        self._members = self.dht.nodes
        self._cycle = itertools.cycle(self._members)

    def place(self, object_id: str) -> str:
        """The node whose invoker should handle this object's request."""
        if not object_id:
            raise ValidationError("cannot route an empty object id")
        self.routed += 1
        owner = self.dht.owner(object_id)
        if self.policy is PlacementPolicy.LOCALITY:
            self.local_hits += 1
            return owner
        if self._members != self.dht.nodes:
            self.refresh()
        if self.policy is PlacementPolicy.ROUND_ROBIN:
            node = next(self._cycle)
        else:
            node = self._rng.choice(self.dht.nodes)
        if node == owner:
            self.local_hits += 1
        return node

    @property
    def locality_ratio(self) -> float:
        """Fraction of requests that landed on the object's owner node."""
        if not self.routed:
            return 0.0
        return self.local_hits / self.routed

"""Asynchronous (fire-and-forget) invocation.

Requests are published to a partitioned topic keyed by object id, so
all updates to one object land on one partition and execute in order —
serializing writers per object without locks.  Workers consume
partitions and run requests through the invocation engine; callers can
await the result through the returned completion event or poll the
result log by request id.
"""

from __future__ import annotations

from typing import Generator

from repro.invoker.engine import InvocationEngine
from repro.invoker.request import InvocationRequest, InvocationResult
from repro.messaging.topic import ConsumerGroup, Message, Topic
from repro.sim.kernel import Environment, Event

__all__ = ["AsyncInvoker"]


class AsyncInvoker:
    """Queue-backed invocation front end."""

    def __init__(
        self,
        env: Environment,
        engine: InvocationEngine,
        partitions: int = 8,
        topic_name: str = "oaas-invocations",
    ) -> None:
        self.env = env
        self.engine = engine
        self.topic = Topic(env, topic_name, partitions=partitions)
        self.results: dict[str, InvocationResult] = {}
        self._completions: dict[str, Event] = {}
        self.submitted = 0
        self._group = ConsumerGroup(env, self.topic, self._handle)

    def submit(self, request: InvocationRequest) -> Event:
        """Enqueue a request; returns an event resolving to its result."""
        self.submitted += 1
        completion = self.env.event()
        self._completions[request.request_id] = completion
        self.topic.publish(request.object_id, request)
        return completion

    def result(self, request_id: str) -> InvocationResult | None:
        """Poll a completed result by request id."""
        return self.results.get(request_id)

    @property
    def pending(self) -> int:
        return self.topic.depth()

    def _handle(self, message: Message) -> Generator:
        request: InvocationRequest = message.value
        result = yield self.engine.invoke(request)
        self.results[request.request_id] = result
        completion = self._completions.pop(request.request_id, None)
        if completion is not None and not completion.triggered:
            completion.succeed(result)

    def stop(self) -> None:
        self._group.stop()

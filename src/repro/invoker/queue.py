"""Asynchronous (fire-and-forget) invocation.

Requests are published to a partitioned topic keyed by object id, so
all updates to one object land on one partition and execute in order —
serializing writers per object without locks.  Workers consume
partitions and run requests through the invocation engine; callers can
await the result through the returned completion event or poll the
result log by request id.

With a QoS plane attached (``PlatformConfig(qos=QosConfig(enabled=True))``)
the FIFO topic drain is replaced by per-partition weighted-fair queues:
requests are admission-checked at submit, partitioned by the *same*
object-id hash (per-object ordering is untouched), and served deficit-
round-robin across classes with EDF inside latency-declared classes.
Queued work may be shed by the overload controller; shed and rejected
requests resolve their completion events with failed
:class:`~repro.invoker.request.InvocationResult`\\ s (``RateLimitedError``
/ ``OverloadError``), never silently.

With a scheduler plane attached (``scheduler=SchedulerConfig(enabled=
True)``) dispatch routes through explicit per-worker queues instead:
each submission is accepted into the scheduler's ledger and handed to
exactly one READY worker (rendezvous-hashed per object id), and the
plane calls back with the single delivered completion per request —
the exactly-once guarantee then lives in the scheduler's run state,
not the topic.  QoS *admission* still applies at submit time in this
mode; the fair-queue drain and shedder do not (documented in
``docs/scheduler.md``).
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Generator

from repro.invoker.engine import InvocationEngine, split_object_id
from repro.invoker.request import InvocationRequest, InvocationResult
from repro.messaging.topic import ConsumerGroup, Message, Topic
from repro.qos.fairqueue import QueuedItem, WeightedFairQueue
from repro.qos.plane import QosPlane
from repro.sim.kernel import Environment, Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.scheduler.plane import SchedulerPlane

__all__ = ["AsyncInvoker"]


def _partition_of(key: str, partitions: int) -> int:
    """Same hash as :meth:`Topic.partition_for` — the fair-queue path
    must agree with the topic path on object placement so per-object
    ordering semantics are identical in both modes."""
    digest = hashlib.md5(key.encode()).digest()
    return int.from_bytes(digest[:4], "big") % partitions


class AsyncInvoker:
    """Queue-backed invocation front end."""

    def __init__(
        self,
        env: Environment,
        engine: InvocationEngine,
        partitions: int = 8,
        topic_name: str = "oaas-invocations",
        qos: QosPlane | None = None,
        scheduler: "SchedulerPlane | None" = None,
    ) -> None:
        self.env = env
        self.engine = engine
        self.qos = qos
        self.scheduler = scheduler
        self.results: dict[str, InvocationResult] = {}
        self._completions: dict[str, Event] = {}
        self.submitted = 0
        self.completed = 0
        self.rejected = 0
        self.shed = 0
        self._running = True
        self._use_scheduler = scheduler is not None
        self._use_wfq = (
            qos is not None
            and qos.config.fair_queue_enabled
            and not self._use_scheduler
        )
        if self._use_scheduler:
            self.topic = None
            self._group = None
            self._queues = []
            scheduler.on_complete = self._on_scheduler_complete
        elif self._use_wfq:
            self.topic = None
            self._group = None
            self._queues = [qos.new_fair_queue() for _ in range(partitions)]
            self._workers = [
                env.process(self._qworker(queue)) for queue in self._queues
            ]
            qos.start_shedder(self._on_shed)
        else:
            self.topic = Topic(env, topic_name, partitions=partitions)
            self._group = ConsumerGroup(env, self.topic, self._handle)

    def submit(self, request: InvocationRequest) -> Event:
        """Enqueue a request; returns an event resolving to its result."""
        self.submitted += 1
        completion = self.env.event()
        self._completions[request.request_id] = completion
        if self.qos is not None:
            cls = request.cls or split_object_id(request.object_id)[0]
            decision = self.qos.admit_async(cls)
            if not decision.admitted:
                self.rejected += 1
                self._resolve(
                    request,
                    InvocationResult.failure(
                        request,
                        f"admission rejected ({decision.reason}); "
                        f"retry after {decision.retry_after_s:.3f}s",
                        error_type="RateLimitedError",
                    ),
                )
                return completion
        if self._use_scheduler:
            self.scheduler.submit(request)
        elif self._use_wfq:
            cls = self._cls_of(request)
            queue = self._queues[_partition_of(request.object_id, len(self._queues))]
            queue.push(cls, request, deadline_s=self.qos.deadline_for(cls))
        else:
            self.topic.publish(request.object_id, request)
        return completion

    def result(self, request_id: str) -> InvocationResult | None:
        """Poll a completed result by request id."""
        return self.results.get(request_id)

    def collect_metrics(self, registry) -> None:
        """Metrics-plane pull hook: async-path submission accounting."""
        from repro.monitoring.plane import set_counter

        labels = {"plane": "invoker", "path": "async"}
        set_counter(registry, "async.submitted", float(self.submitted), labels)
        set_counter(registry, "async.completed", float(self.completed), labels)
        set_counter(registry, "async.rejected", float(self.rejected), labels)
        set_counter(registry, "async.shed", float(self.shed), labels)
        registry.gauge("async.pending", labels).set(float(self.pending))

    @property
    def pending(self) -> int:
        if self._use_scheduler:
            return self.scheduler.outstanding
        if self._use_wfq:
            return sum(queue.depth() for queue in self._queues)
        return self.topic.depth()

    @staticmethod
    def _cls_of(request: InvocationRequest) -> str:
        return request.cls or split_object_id(request.object_id)[0] or ""

    def _resolve(self, request: InvocationRequest, result: InvocationResult) -> None:
        self.results[request.request_id] = result
        completion = self._completions.pop(request.request_id, None)
        if completion is not None and not completion.triggered:
            completion.succeed(result)

    # -- FIFO topic path ---------------------------------------------------

    def _handle(self, message: Message) -> Generator:
        request: InvocationRequest = message.value
        result = yield self.engine.invoke(request)
        self.completed += 1
        self._resolve(request, result)

    # -- scheduler path ----------------------------------------------------

    def _on_scheduler_complete(
        self, request: InvocationRequest, result: InvocationResult
    ) -> None:
        """Scheduler-plane callback: the single delivered completion."""
        self.completed += 1
        self._resolve(request, result)

    # -- weighted-fair path ------------------------------------------------

    def _qworker(self, queue: WeightedFairQueue) -> Generator:
        while self._running:
            item = yield queue.get()
            if not self._running:
                return
            request: InvocationRequest = item.value
            self.qos.record_queue_delay(
                self._cls_of(request), item.queue_delay(self.env.now)
            )
            result = yield self.engine.invoke(request)
            self.completed += 1
            self._resolve(request, result)

    def _on_shed(self, item: QueuedItem) -> None:
        """Overload-controller callback: fail a shed request's completion."""
        request: InvocationRequest = item.value
        self.shed += 1
        self._resolve(
            request,
            InvocationResult.failure(
                request,
                "shed by overload controller (queue brownout)",
                error_type="OverloadError",
            ),
        )

    def stop(self) -> dict[str, int]:
        """Stop draining; returns ``{"pending": n}`` — submissions not
        fully processed (queued, fetched-in-flight, or mid-handler) at
        stop time, mirroring ``WriteBehindQueue.stop()``'s loss report."""
        self._running = False
        if self._use_scheduler:
            return self.scheduler.stop()
        if self._use_wfq:
            self.qos.stop()
            return {
                "pending": self.submitted
                - self.completed
                - self.rejected
                - self.shed
            }
        return self._group.stop()

"""Typed, declarative fault plans.

A :class:`FaultPlan` is a named, ordered collection of fault profiles —
each a frozen dataclass naming *what* breaks, *when* (simulated
seconds), and *for how long*.  Plans are pure data: the same plan
injected into the same seeded platform produces byte-identical event
logs, which is what makes chaos testing regressible (the determinism
suite replays plans and diffs the logs).

Profiles mirror the failure modes a real OaaS deployment sees:

=======================  ==================================================
profile                  models
=======================  ==================================================
:class:`NodeCrash`       a worker VM dying (optionally restarting later)
:class:`Partition`       a network partition isolating a set of nodes
:class:`NetworkDelay`    degraded links (added latency on a path)
:class:`SlowPods`        saturated/overheating hosts running pods slowly
:class:`StorageFaults`   the document store failing a fraction of writes
:class:`ColdStartStorm`  every pod of a class evicted at once
:class:`WorkerCrash`     a scheduler-plane worker dying mid-run [s]
:class:`HeartbeatLoss`   a worker going silent while still executing [s]
:class:`SlowWorker`      one worker's dispatch overhead multiplied [s]
:class:`ZonePartition`   a whole zone cut off from the federation [f]
:class:`WanDegradation`  a degraded WAN link between two zones [f]
=======================  ==================================================

Profiles marked ``[s]`` target the scheduler plane and require
``PlatformConfig(scheduler=SchedulerConfig(enabled=True))``; profiles
marked ``[f]`` target the federation plane and require
``PlatformConfig(federation=FederationConfig(enabled=True))``.
Injecting either into a baseline platform raises
:class:`SimulationError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import ValidationError

__all__ = [
    "Fault",
    "NodeCrash",
    "Partition",
    "NetworkDelay",
    "SlowPods",
    "StorageFaults",
    "ColdStartStorm",
    "WorkerCrash",
    "HeartbeatLoss",
    "SlowWorker",
    "ZonePartition",
    "WanDegradation",
    "FaultPlan",
]


@dataclass(frozen=True, kw_only=True)
class Fault:
    """Base fault profile: a typed event on the chaos timeline.

    Attributes:
        at: injection time in simulated seconds from plan start.
        duration_s: how long the fault holds before the injector reverts
            it.  ``0`` means the fault has no revert action (it is
            instantaneous, like :class:`ColdStartStorm`, or permanent,
            like a :class:`NodeCrash` without a restart).
    """

    at: float = 0.0
    duration_s: float = 0.0

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValidationError(f"fault time must be >= 0, got {self.at}")
        if self.duration_s < 0:
            raise ValidationError(
                f"fault duration must be >= 0, got {self.duration_s}"
            )

    @property
    def kind(self) -> str:
        return type(self).__name__

    def describe(self) -> dict[str, Any]:
        out: dict[str, Any] = {"kind": self.kind, "at": self.at}
        if self.duration_s:
            out["duration_s"] = self.duration_s
        return out


@dataclass(frozen=True, kw_only=True)
class NodeCrash(Fault):
    """A worker VM crashes; pods die and its DHT partitions fail over.

    With ``duration_s > 0`` the node rejoins (empty, like a fresh VM)
    after the outage and eligible class runtimes rebalance onto it.
    """

    node: str

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.node:
            raise ValidationError("NodeCrash requires a node name")

    def describe(self) -> dict[str, Any]:
        return {**super().describe(), "node": self.node}


@dataclass(frozen=True, kw_only=True)
class Partition(Fault):
    """A network partition isolating ``nodes`` from the rest (and from
    the gateway side).  Healing clears the partition and runs DHT
    anti-entropy so replicas reconverge."""

    nodes: tuple[str, ...]

    def __post_init__(self) -> None:
        super().__post_init__()
        object.__setattr__(self, "nodes", tuple(self.nodes))
        if not self.nodes:
            raise ValidationError("Partition requires at least one node")
        if self.duration_s <= 0:
            raise ValidationError("Partition requires duration_s > 0")

    def describe(self) -> dict[str, Any]:
        return {**super().describe(), "nodes": list(self.nodes)}


@dataclass(frozen=True, kw_only=True)
class NetworkDelay(Fault):
    """Extra one-way latency on a path (``None`` endpoint = any)."""

    extra_s: float
    src: str | None = None
    dst: str | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.extra_s <= 0:
            raise ValidationError(f"extra_s must be > 0, got {self.extra_s}")
        if self.duration_s <= 0:
            raise ValidationError("NetworkDelay requires duration_s > 0")

    def describe(self) -> dict[str, Any]:
        return {
            **super().describe(),
            "extra_s": self.extra_s,
            "src": self.src,
            "dst": self.dst,
        }


@dataclass(frozen=True, kw_only=True)
class SlowPods(Fault):
    """Pods execute ``factor`` times slower — service-wide, or scoped to
    one class and/or one node (a saturated host)."""

    factor: float
    cls: str | None = None
    node: str | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.factor <= 1.0:
            raise ValidationError(f"slowdown factor must be > 1, got {self.factor}")
        if self.duration_s <= 0:
            raise ValidationError("SlowPods requires duration_s > 0")

    def describe(self) -> dict[str, Any]:
        return {
            **super().describe(),
            "factor": self.factor,
            "cls": self.cls,
            "node": self.node,
        }


@dataclass(frozen=True, kw_only=True)
class StorageFaults(Fault):
    """The document store fails a fraction of write batches.

    Draws come from the platform's seeded ``"chaos.storage"`` stream, so
    which writes fail is deterministic per seed.
    """

    error_rate: float

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 < self.error_rate <= 1.0:
            raise ValidationError(
                f"error_rate must be in (0, 1], got {self.error_rate}"
            )
        if self.duration_s <= 0:
            raise ValidationError("StorageFaults requires duration_s > 0")

    def describe(self) -> dict[str, Any]:
        return {**super().describe(), "error_rate": self.error_rate}


@dataclass(frozen=True, kw_only=True)
class ColdStartStorm(Fault):
    """Every pod of the named classes (all classes when empty) is
    evicted at once — the next requests all pay cold starts."""

    classes: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        super().__post_init__()
        object.__setattr__(self, "classes", tuple(self.classes))
        if self.duration_s:
            raise ValidationError(
                "ColdStartStorm is instantaneous; duration_s must be 0"
            )

    def describe(self) -> dict[str, Any]:
        return {**super().describe(), "classes": list(self.classes)}


@dataclass(frozen=True, kw_only=True)
class WorkerCrash(Fault):
    """A scheduler-plane worker dies mid-run: its epoch is fenced and
    everything it held (queued + in-flight) is requeued elsewhere.

    With ``duration_s > 0`` a fresh registration under the same name
    rejoins after the outage (a restarted worker process); with ``0``
    the crash is permanent (pool replacement policy decides what
    happens next).
    """

    worker: str

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.worker:
            raise ValidationError("WorkerCrash requires a worker name")

    def describe(self) -> dict[str, Any]:
        return {**super().describe(), "worker": self.worker}


@dataclass(frozen=True, kw_only=True)
class HeartbeatLoss(Fault):
    """A worker's heartbeats stop reaching the scheduler while the
    worker keeps executing — the zombie case.  The scheduler degrades
    it, rebinds its queue, and (if silence outlasts the dead threshold)
    fences its epoch; results from the fenced registration are
    suppressed, never double-delivered."""

    worker: str

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.worker:
            raise ValidationError("HeartbeatLoss requires a worker name")
        if self.duration_s <= 0:
            raise ValidationError("HeartbeatLoss requires duration_s > 0")

    def describe(self) -> dict[str, Any]:
        return {**super().describe(), "worker": self.worker}


@dataclass(frozen=True, kw_only=True)
class SlowWorker(Fault):
    """One worker's per-dispatch overhead is multiplied by ``factor``
    (a saturated or throttled worker process)."""

    worker: str
    factor: float

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.worker:
            raise ValidationError("SlowWorker requires a worker name")
        if self.factor <= 1.0:
            raise ValidationError(f"slowdown factor must be > 1, got {self.factor}")
        if self.duration_s <= 0:
            raise ValidationError("SlowWorker requires duration_s > 0")

    def describe(self) -> dict[str, Any]:
        return {**super().describe(), "worker": self.worker, "factor": self.factor}


@dataclass(frozen=True, kw_only=True)
class ZonePartition(Fault):
    """Every node of one federation zone is cut off from the rest of
    the cluster (and from clients) — an edge site dropping off the WAN.
    Healing clears the partition and runs DHT anti-entropy on every
    class runtime with members in the zone."""

    zone: str

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.zone:
            raise ValidationError("ZonePartition requires a zone name")
        if self.duration_s <= 0:
            raise ValidationError("ZonePartition requires duration_s > 0")

    def describe(self) -> dict[str, Any]:
        return {**super().describe(), "zone": self.zone}


@dataclass(frozen=True, kw_only=True)
class WanDegradation(Fault):
    """The WAN link between two zones degrades: ``extra_s`` of added
    latency on every transfer between their nodes (symmetric).  With
    ``dst_zone`` omitted, everything in or out of ``src_zone`` slows."""

    src_zone: str
    dst_zone: str | None = None
    extra_s: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.src_zone:
            raise ValidationError("WanDegradation requires a src_zone")
        if self.extra_s <= 0:
            raise ValidationError(f"extra_s must be > 0, got {self.extra_s}")
        if self.duration_s <= 0:
            raise ValidationError("WanDegradation requires duration_s > 0")

    def describe(self) -> dict[str, Any]:
        return {
            **super().describe(),
            "src_zone": self.src_zone,
            "dst_zone": self.dst_zone,
            "extra_s": self.extra_s,
        }


@dataclass(frozen=True)
class FaultPlan:
    """A named chaos schedule: the faults, in timeline order."""

    name: str
    faults: tuple[Fault, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("fault plan needs a name")
        object.__setattr__(self, "faults", tuple(self.faults))
        if not self.faults:
            raise ValidationError(f"fault plan {self.name!r} has no faults")
        for fault in self.faults:
            if not isinstance(fault, Fault):
                raise ValidationError(
                    f"fault plan {self.name!r} contains a non-Fault entry: "
                    f"{fault!r}"
                )

    @property
    def end_s(self) -> float:
        """When the last fault has been injected and reverted."""
        return max(f.at + f.duration_s for f in self.faults)

    def describe(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "end_s": self.end_s,
            "faults": [f.describe() for f in sorted(self.faults, key=lambda f: f.at)],
        }

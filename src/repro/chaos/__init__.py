"""Fault-injection plane: typed fault plans and the chaos injector.

Chaos here is an input, not an accident: a :class:`FaultPlan` lists
typed fault profiles on a timeline, the :class:`ChaosInjector` replays
them through the platform's real seams (node membership, network fault
state, FaaS slowdowns, storage write faults, deployment scaling), and —
because every source of randomness is seeded — the same plan on the
same platform produces byte-identical event logs every run.
"""

from repro.chaos.injector import CHAOS_TRACE_ID, ChaosInjector, FaultWindow
from repro.chaos.plan import (
    ColdStartStorm,
    Fault,
    FaultPlan,
    HeartbeatLoss,
    NetworkDelay,
    NodeCrash,
    Partition,
    SlowPods,
    SlowWorker,
    StorageFaults,
    WanDegradation,
    WorkerCrash,
    ZonePartition,
)
from repro.chaos.plans import PLAN_NAMES, named_plan

__all__ = [
    "CHAOS_TRACE_ID",
    "ChaosInjector",
    "FaultWindow",
    "Fault",
    "FaultPlan",
    "NodeCrash",
    "Partition",
    "NetworkDelay",
    "SlowPods",
    "StorageFaults",
    "ColdStartStorm",
    "WorkerCrash",
    "HeartbeatLoss",
    "SlowWorker",
    "ZonePartition",
    "WanDegradation",
    "PLAN_NAMES",
    "named_plan",
]

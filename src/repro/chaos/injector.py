"""The chaos injector: replays a :class:`FaultPlan` against a live
platform, deterministically.

The injector compiles the plan into a timeline of inject/recover
actions, walks it as a simulation process, and applies each fault
through the platform's own seams — node membership for crashes, the
network fault state for partitions and delays, FaaS slowdown hooks for
saturated hosts, the document store's write-fault knob, and deployment
scaling for cold-start storms.  No fault bypasses the data path the
workload actually uses.

Every action emits a ``chaos.inject``/``chaos.recover`` control-plane
event (and an instantaneous span under the ``"chaos"`` trace), so fault
timelines line up with retries, breaker transitions, and request spans
in the exported traces.

While at least one fault is held, the injector keeps an *availability
window* open: per-class completed/failed counters are snapshotted when
the window opens and the deltas accumulated when it closes, yielding
:meth:`ChaosInjector.fault_availability` — the number the NFR report
compares against each class's declared availability target.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Any, Callable, Generator

from repro.chaos.plan import (
    ColdStartStorm,
    Fault,
    FaultPlan,
    HeartbeatLoss,
    NetworkDelay,
    NodeCrash,
    Partition,
    SlowPods,
    SlowWorker,
    StorageFaults,
    WanDegradation,
    WorkerCrash,
    ZonePartition,
)
from repro.errors import SimulationError
from repro.sim.kernel import Process

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.platform.oparaca import Oparaca

#: Chaos action spans share one synthetic trace (like ``"resilience"``).
CHAOS_TRACE_ID = "chaos"

__all__ = ["CHAOS_TRACE_ID", "ChaosInjector", "FaultWindow"]


class FaultWindow:
    """One contiguous span of wall-clock (sim) time with faults active."""

    def __init__(self, started_at: float) -> None:
        self.started_at = started_at
        self.ended_at: float | None = None

    @property
    def open(self) -> bool:
        return self.ended_at is None

    def to_dict(self) -> dict[str, Any]:
        return {"started_at": self.started_at, "ended_at": self.ended_at}


class ChaosInjector:
    """Executes one fault plan against one platform instance."""

    def __init__(self, platform: "Oparaca", plan: FaultPlan) -> None:
        self.platform = platform
        self.plan = plan
        self.env = platform.env
        self.events = platform.events
        self.tracer = platform.tracer
        self.injected = 0
        self.recovered = 0
        self.windows: list[FaultWindow] = []
        self._active = 0
        self._process: Process | None = None
        self._storage_rng: random.Random | None = None
        # Per-class (completed, failed) at the moment the current window
        # opened, and the accumulated under-fault deltas of closed windows.
        self._window_base: dict[str, tuple[int, int]] = {}
        self._fault_completed: dict[str, int] = {}
        self._fault_failed: dict[str, int] = {}

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> Process:
        """Launch the injection timeline; returns its process."""
        if self._process is not None:
            return self._process
        self._process = self.env.process(self._run())
        return self._process

    @property
    def done(self) -> bool:
        return self._process is not None and self._process.triggered

    def _run(self) -> Generator[Any, Any, None]:
        actions: list[tuple[float, int, int, Callable[[], None]]] = []
        for index, fault in enumerate(
            sorted(self.plan.faults, key=lambda f: (f.at, f.kind))
        ):
            inject, recover = self._compile(fault)
            # Phase 0 = recover, 1 = inject: at the same instant, heal
            # the previous fault before injecting the next one.
            actions.append((fault.at, 1, index, inject))
            if recover is not None:
                actions.append((fault.at + fault.duration_s, 0, index, recover))
        actions.sort(key=lambda entry: entry[:3])
        for when, _phase, _index, action in actions:
            if when > self.env.now:
                yield self.env.timeout(when - self.env.now)
            action()

    # -- fault compilation ---------------------------------------------------

    def _compile(
        self, fault: Fault
    ) -> tuple[Callable[[], None], Callable[[], None] | None]:
        """Build the (inject, recover) closures for one fault."""
        if isinstance(fault, NodeCrash):
            return self._compile_node_crash(fault)
        if isinstance(fault, Partition):
            return self._compile_partition(fault)
        if isinstance(fault, NetworkDelay):
            return self._compile_delay(fault)
        if isinstance(fault, SlowPods):
            return self._compile_slow_pods(fault)
        if isinstance(fault, StorageFaults):
            return self._compile_storage(fault)
        if isinstance(fault, ColdStartStorm):
            return self._compile_storm(fault)
        if isinstance(fault, WorkerCrash):
            return self._compile_worker_crash(fault)
        if isinstance(fault, HeartbeatLoss):
            return self._compile_heartbeat_loss(fault)
        if isinstance(fault, SlowWorker):
            return self._compile_slow_worker(fault)
        if isinstance(fault, ZonePartition):
            return self._compile_zone_partition(fault)
        if isinstance(fault, WanDegradation):
            return self._compile_wan_degradation(fault)
        raise NotImplementedError(f"no injector for fault kind {fault.kind!r}")

    def _compile_node_crash(self, fault: NodeCrash):
        region_box: list[str | None] = [None]

        def inject() -> None:
            region_box[0] = self.platform.cluster.region_of(fault.node)
            self.platform.fail_node(fault.node)
            self._on_inject(fault)

        if not fault.duration_s:
            # Permanent crash: the platform stays degraded, the
            # availability window stays open for the rest of the run.
            return inject, None

        def recover() -> None:
            self.platform.add_node(fault.node, region=region_box[0])
            self._on_recover(fault)

        return inject, recover

    def _compile_partition(self, fault: Partition):
        def inject() -> None:
            self.platform.network.fault_state().isolate(fault.nodes)
            self._on_inject(fault)

        def recover() -> None:
            self.platform.network.fault_state().clear_partition()
            # Anti-entropy: replicas on both sides reconverge on the
            # newest version of every key they own.
            isolated = set(fault.nodes)
            for runtime in self.platform.crm.runtimes.values():
                if isolated & set(runtime.dht.nodes):
                    runtime.dht.rebalance()
            self._on_recover(fault)

        return inject, recover

    def _compile_delay(self, fault: NetworkDelay):
        token_box: list[object] = [None]

        def inject() -> None:
            token_box[0] = self.platform.network.fault_state().add_delay(
                fault.extra_s, src=fault.src, dst=fault.dst
            )
            self._on_inject(fault)

        def recover() -> None:
            self.platform.network.fault_state().remove_delay(token_box[0])
            self._on_recover(fault)

        return inject, recover

    def _services_of(self, classes: tuple[str, ...]):
        for cls, runtime in sorted(self.platform.crm.runtimes.items()):
            if classes and cls not in classes:
                continue
            for _name, svc in sorted(runtime.services.items()):
                yield runtime, svc

    def _compile_slow_pods(self, fault: SlowPods):
        classes = (fault.cls,) if fault.cls else ()

        def inject() -> None:
            for _runtime, svc in self._services_of(classes):
                svc.set_slowdown(fault.factor, node=fault.node)
            self._on_inject(fault)

        def recover() -> None:
            for _runtime, svc in self._services_of(classes):
                svc.clear_slowdown(node=fault.node)
            self._on_recover(fault)

        return inject, recover

    def _compile_storage(self, fault: StorageFaults):
        def inject() -> None:
            if self._storage_rng is None:
                self._storage_rng = self.platform.rng.stream("chaos.storage")
            self.platform.store.set_write_fault(
                fault.error_rate, rng=self._storage_rng
            )
            self._on_inject(fault)

        def recover() -> None:
            self.platform.store.clear_write_fault()
            self._on_recover(fault)

        return inject, recover

    def _compile_storm(self, fault: ColdStartStorm):
        def inject() -> None:
            for runtime, svc in self._services_of(fault.classes):
                prior = max(1, svc.deployment.desired)
                svc.deployment.scale(0)
                if runtime.engine_name != "knative":
                    # Plain deployments cannot scale from zero; replace
                    # the evicted pods with cold-booting ones instead.
                    svc.deployment.scale(prior)
            self._on_inject(fault)

        # Instantaneous: the storm's cost is the cold starts that follow,
        # which the latency metrics capture; no availability window.
        return inject, None

    def _scheduler_plane(self, fault: Fault):
        plane = self.platform.scheduler_plane
        if plane is None:
            raise SimulationError(
                f"{fault.kind} targets the scheduler plane; enable it with "
                "PlatformConfig(scheduler=SchedulerConfig(enabled=True))"
            )
        return plane

    def _compile_worker_crash(self, fault: WorkerCrash):
        plane = self._scheduler_plane(fault)

        def inject() -> None:
            plane.crash_worker(fault.worker, reason="chaos")
            self._on_inject(fault)

        if not fault.duration_s:
            # Permanent: pool replacement policy (if on) already filled
            # the slot; the named worker itself never returns.
            return inject, None

        def recover() -> None:
            current = plane.workers.get(fault.worker)
            if current is None or current.machine.is_dead:
                plane.register_worker(fault.worker)
            self._on_recover(fault)

        return inject, recover

    def _compile_heartbeat_loss(self, fault: HeartbeatLoss):
        plane = self._scheduler_plane(fault)

        def inject() -> None:
            plane.suppress_heartbeats(fault.worker, fault.duration_s)
            self._on_inject(fault)

        def recover() -> None:
            plane.resume_heartbeats(fault.worker)
            self._on_recover(fault)

        return inject, recover

    def _compile_slow_worker(self, fault: SlowWorker):
        plane = self._scheduler_plane(fault)

        def inject() -> None:
            plane.set_worker_slow(fault.worker, fault.factor)
            self._on_inject(fault)

        def recover() -> None:
            plane.clear_worker_slow(fault.worker)
            self._on_recover(fault)

        return inject, recover

    def _federation_plane(self, fault: Fault):
        plane = self.platform.federation
        if plane is None:
            raise SimulationError(
                f"{fault.kind} targets the federation plane; enable it with "
                "PlatformConfig(federation=FederationConfig(enabled=True))"
            )
        return plane

    def _zone_nodes(self, plane, zone: str) -> list[str]:
        plane.topology.zone(zone)  # raises ValidationError for unknown zones
        return plane.planner.nodes_in_zone(zone)

    def _compile_zone_partition(self, fault: ZonePartition):
        plane = self._federation_plane(fault)

        def inject() -> None:
            nodes = self._zone_nodes(plane, fault.zone)
            self.platform.network.fault_state().isolate(nodes)
            self._on_inject(fault)

        def recover() -> None:
            self.platform.network.fault_state().clear_partition()
            # Anti-entropy, exactly like a healed Partition: zone-side
            # replicas reconverge with the rest of the federation.
            isolated = set(self._zone_nodes(plane, fault.zone))
            for runtime in self.platform.crm.runtimes.values():
                if isolated & set(runtime.dht.nodes):
                    runtime.dht.rebalance()
            self._on_recover(fault)

        return inject, recover

    def _compile_wan_degradation(self, fault: WanDegradation):
        plane = self._federation_plane(fault)
        token_box: list[object] = [None]

        def inject() -> None:
            src = self._zone_nodes(plane, fault.src_zone)
            dst = (
                self._zone_nodes(plane, fault.dst_zone)
                if fault.dst_zone is not None
                else None
            )
            token_box[0] = self.platform.network.fault_state().add_delay(
                fault.extra_s, src=src, dst=dst
            )
            self._on_inject(fault)

        def recover() -> None:
            self.platform.network.fault_state().remove_delay(token_box[0])
            self._on_recover(fault)

        return inject, recover

    # -- window + event accounting -------------------------------------------

    def _emit(self, kind: str, fault: Fault) -> None:
        fields = fault.describe()
        fields.pop("at", None)
        if self.events.enabled:
            self.events.record(kind, plan=self.plan.name, **fields)
        if self.tracer is not None and self.tracer.enabled:
            span = self.tracer.start(
                CHAOS_TRACE_ID, f"{kind} {fault.kind}", plan=self.plan.name
            )
            self.tracer.finish(span)

    def _on_inject(self, fault: Fault) -> None:
        self.injected += 1
        self._emit("chaos.inject", fault)
        if isinstance(fault, ColdStartStorm):
            return
        self._active += 1
        if self._active == 1:
            self.windows.append(FaultWindow(self.env.now))
            self._window_base = {
                cls: (obs.completed, obs.failed) for cls, obs in self._class_obs()
            }

    def _on_recover(self, fault: Fault) -> None:
        self.recovered += 1
        self._emit("chaos.recover", fault)
        self._active -= 1
        if self._active == 0:
            self.windows[-1].ended_at = self.env.now
            for cls, completed, failed in self._window_deltas():
                self._fault_completed[cls] = (
                    self._fault_completed.get(cls, 0) + completed
                )
                self._fault_failed[cls] = self._fault_failed.get(cls, 0) + failed
            self._window_base = {}

    def _class_obs(self):
        monitoring = self.platform.monitoring
        for cls in self.platform.crm.deployed_classes():
            yield cls, monitoring.for_class(cls)

    def _window_deltas(self):
        """Per-class (completed, failed) deltas of the open window."""
        for cls, obs in self._class_obs():
            base_completed, base_failed = self._window_base.get(cls, (0, 0))
            yield cls, obs.completed - base_completed, obs.failed - base_failed

    # -- reporting -----------------------------------------------------------

    def fault_time_s(self) -> float:
        """Total simulated time spent with at least one fault active."""
        total = 0.0
        for window in self.windows:
            total += (window.ended_at if window.ended_at is not None else self.env.now) - window.started_at
        return total

    def fault_counts(self) -> dict[str, tuple[int, int]]:
        """Per-class (completed, failed) during fault windows, live."""
        counts = {
            cls: (self._fault_completed.get(cls, 0), self._fault_failed.get(cls, 0))
            for cls in self.platform.crm.deployed_classes()
        }
        if self._active > 0:
            for cls, completed, failed in self._window_deltas():
                base_completed, base_failed = counts.get(cls, (0, 0))
                counts[cls] = (base_completed + completed, base_failed + failed)
        return counts

    def fault_availability(self) -> dict[str, float | None]:
        """Fraction of invocations that succeeded while faults were
        active, per class; ``None`` when a class saw no traffic then."""
        out: dict[str, float | None] = {}
        for cls, (completed, failed) in self.fault_counts().items():
            total = completed + failed
            out[cls] = completed / total if total else None
        return out

    def collect_metrics(self, registry) -> None:
        """Metrics-plane pull hook: injection totals and live fault state."""
        from repro.monitoring.plane import set_counter

        labels = {"plane": "chaos"}
        set_counter(registry, "chaos.injected", float(self.injected), labels)
        set_counter(registry, "chaos.recovered", float(self.recovered), labels)
        registry.gauge("chaos.active_faults", labels).set(float(self._active))
        registry.gauge("chaos.fault_time_s", labels).set(self.fault_time_s())

    def summary(self) -> dict[str, Any]:
        return {
            "plan": self.plan.describe(),
            "injected": self.injected,
            "recovered": self.recovered,
            "fault_time_s": self.fault_time_s(),
            "windows": [w.to_dict() for w in self.windows],
            "availability_under_fault": self.fault_availability(),
        }

"""Builtin named fault plans (the ``ocli chaos --plan`` catalog).

Each builder takes the platform's node names so plans aim at real
nodes; every plan finishes (last fault reverted) within ~20 simulated
seconds, so a chaos run bounded by ``plan.end_s`` plus a settle margin
always terminates.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.chaos.plan import (
    ColdStartStorm,
    FaultPlan,
    NetworkDelay,
    NodeCrash,
    Partition,
    SlowPods,
    StorageFaults,
)
from repro.errors import ValidationError

__all__ = ["PLAN_NAMES", "named_plan"]


def _pick(nodes: Sequence[str], index: int) -> str:
    """The index-th node, wrapping — plans work on any cluster size."""
    if not nodes:
        raise ValidationError("chaos plans need at least one cluster node")
    return nodes[index % len(nodes)]


def _node_crash(nodes: Sequence[str]) -> FaultPlan:
    return FaultPlan(
        "node-crash",
        (NodeCrash(at=2.0, duration_s=6.0, node=_pick(nodes, 1)),),
    )


def _partition(nodes: Sequence[str]) -> FaultPlan:
    return FaultPlan(
        "partition",
        (Partition(at=2.0, duration_s=6.0, nodes=(_pick(nodes, 2),)),),
    )


def _slow_pods(nodes: Sequence[str]) -> FaultPlan:
    return FaultPlan(
        "slow-pods",
        (SlowPods(at=2.0, duration_s=8.0, factor=5.0, node=_pick(nodes, 0)),),
    )


def _storage_errors(nodes: Sequence[str]) -> FaultPlan:
    return FaultPlan(
        "storage-errors",
        (StorageFaults(at=2.0, duration_s=8.0, error_rate=0.5),),
    )


def _cold_start_storm(nodes: Sequence[str]) -> FaultPlan:
    return FaultPlan("cold-start-storm", (ColdStartStorm(at=2.0),))


def _overload(nodes: Sequence[str]) -> FaultPlan:
    """Capacity collapse without hard failures: every node's pods slow
    down while a cold-start storm flushes warm replicas.  Service rates
    fall far below offered load, so backlog builds and the QoS plane's
    overload controller (when enabled) must shed — deterministically,
    since nothing here is random."""
    slow = tuple(
        SlowPods(at=2.0, duration_s=10.0, factor=6.0, node=node) for node in nodes
    )
    return FaultPlan("overload", slow + (ColdStartStorm(at=2.0),))


def _mixed(nodes: Sequence[str]) -> FaultPlan:
    """The kitchen sink: a crash, a partition, slow pods, lossy storage,
    and a degraded link, overlapping the way real incidents do."""
    return FaultPlan(
        "mixed",
        (
            NodeCrash(at=2.0, duration_s=8.0, node=_pick(nodes, 1)),
            StorageFaults(at=3.0, duration_s=6.0, error_rate=0.3),
            Partition(at=4.0, duration_s=5.0, nodes=(_pick(nodes, 2),)),
            SlowPods(at=5.0, duration_s=6.0, factor=3.0, node=_pick(nodes, 0)),
            NetworkDelay(at=6.0, duration_s=6.0, extra_s=0.01),
        ),
    )


_BUILDERS: dict[str, Callable[[Sequence[str]], FaultPlan]] = {
    "node-crash": _node_crash,
    "partition": _partition,
    "slow-pods": _slow_pods,
    "storage-errors": _storage_errors,
    "cold-start-storm": _cold_start_storm,
    "overload": _overload,
    "mixed": _mixed,
}

PLAN_NAMES: tuple[str, ...] = tuple(sorted(_BUILDERS))


def named_plan(name: str, nodes: Sequence[str]) -> FaultPlan:
    """Build the builtin plan ``name`` against ``nodes``."""
    builder = _BUILDERS.get(name)
    if builder is None:
        raise ValidationError(
            f"unknown chaos plan {name!r}; available: {list(PLAN_NAMES)}"
        )
    return builder(nodes)

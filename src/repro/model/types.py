"""State typing for OaaS classes.

An OaaS class declares its structured state as a list of *key
specifications* (``keySpecs`` in the paper's Listing 1).  Each key has a
name and a data type; ``FILE`` keys denote unstructured data kept in the
S3-style object store (§III-D), every other type lives in the
distributed structured-state store.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field

from repro.errors import ValidationError

__all__ = ["DataType", "KeySpec", "StateSpec"]

_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_.-]*$")


class DataType(str, enum.Enum):
    """Supported data types for object state keys."""

    INT = "INT"
    FLOAT = "FLOAT"
    STR = "STR"
    BOOL = "BOOL"
    JSON = "JSON"
    #: Unstructured data held in object storage and referenced by key.
    FILE = "FILE"

    @classmethod
    def parse(cls, raw: str) -> "DataType":
        """Parse a type token, tolerating the paper's ``File Image`` style
        annotations by taking the first word, case-insensitively."""
        token = str(raw).strip().split()[0].upper() if str(raw).strip() else ""
        try:
            return cls(token)
        except ValueError:
            raise ValidationError(
                f"unknown data type {raw!r}; expected one of "
                f"{', '.join(m.value for m in cls)}"
            ) from None

    def accepts(self, value: object) -> bool:
        """Whether a Python value is admissible for this type."""
        if value is None:
            return True
        if self is DataType.INT:
            return isinstance(value, int) and not isinstance(value, bool)
        if self is DataType.FLOAT:
            return isinstance(value, (int, float)) and not isinstance(value, bool)
        if self is DataType.STR:
            return isinstance(value, str)
        if self is DataType.BOOL:
            return isinstance(value, bool)
        if self is DataType.JSON:
            return isinstance(value, (dict, list, str, int, float, bool))
        if self is DataType.FILE:
            # FILE values are object-store keys (strings) managed by the
            # platform; user code never stores raw bytes in object state.
            return isinstance(value, str)
        return False  # pragma: no cover - exhaustive above


@dataclass(frozen=True)
class KeySpec:
    """Specification of one state key of a class."""

    name: str
    dtype: DataType = DataType.JSON
    default: object = None
    doc: str = ""

    def __post_init__(self) -> None:
        if not _NAME_RE.match(self.name):
            raise ValidationError(f"invalid state key name {self.name!r}")
        if self.default is not None and not self.dtype.accepts(self.default):
            raise ValidationError(
                f"default {self.default!r} is not a valid {self.dtype.value} "
                f"for key {self.name!r}"
            )

    @property
    def is_file(self) -> bool:
        return self.dtype is DataType.FILE


@dataclass(frozen=True)
class StateSpec:
    """The full structured-state schema of a class."""

    key_specs: tuple[KeySpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        names = [spec.name for spec in self.key_specs]
        duplicates = {name for name in names if names.count(name) > 1}
        if duplicates:
            raise ValidationError(f"duplicate state keys: {sorted(duplicates)}")

    def __iter__(self):
        return iter(self.key_specs)

    def __len__(self) -> int:
        return len(self.key_specs)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(spec.name for spec in self.key_specs)

    @property
    def file_keys(self) -> tuple[str, ...]:
        """Names of the unstructured (object-store) keys."""
        return tuple(spec.name for spec in self.key_specs if spec.is_file)

    @property
    def data_keys(self) -> tuple[str, ...]:
        """Names of the structured keys."""
        return tuple(spec.name for spec in self.key_specs if not spec.is_file)

    def get(self, name: str) -> KeySpec | None:
        for spec in self.key_specs:
            if spec.name == name:
                return spec
        return None

    def defaults(self) -> dict[str, object]:
        """Initial structured state for a fresh object."""
        return {
            spec.name: spec.default
            for spec in self.key_specs
            if not spec.is_file and spec.default is not None
        }

    def validate_state(self, state: dict[str, object]) -> None:
        """Check a structured-state dict against the schema.

        Unknown keys are rejected; FILE keys may not appear (they are
        managed through the object store, not object state writes).
        """
        for key, value in state.items():
            spec = self.get(key)
            if spec is None:
                raise ValidationError(f"unknown state key {key!r}")
            if spec.is_file:
                raise ValidationError(
                    f"key {key!r} is FILE-typed; write it through the "
                    "object-store API, not structured state"
                )
            if not spec.dtype.accepts(value):
                raise ValidationError(
                    f"value {value!r} is not a valid {spec.dtype.value} for "
                    f"key {key!r}"
                )

    def merged_with(self, child: "StateSpec") -> "StateSpec":
        """Combine a parent schema with a child schema (inheritance).

        The child may add keys and may *redeclare* a parent key only with
        an identical type (narrowing state types would break parent
        methods operating on the object).
        """
        merged: list[KeySpec] = list(self.key_specs)
        index = {spec.name: i for i, spec in enumerate(merged)}
        for spec in child.key_specs:
            if spec.name in index:
                existing = merged[index[spec.name]]
                if existing.dtype is not spec.dtype:
                    raise ValidationError(
                        f"state key {spec.name!r} redeclared with type "
                        f"{spec.dtype.value}, parent has {existing.dtype.value}"
                    )
                merged[index[spec.name]] = spec
            else:
                index[spec.name] = len(merged)
                merged.append(spec)
        return StateSpec(tuple(merged))

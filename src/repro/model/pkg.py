"""Packages: parsing class definitions from YAML/JSON (tutorial step 4).

A package bundles class definitions and function definitions, exactly
like the paper's Listing 1.  Developers write YAML (or JSON); the
parser is strict — unknown keys raise :class:`ValidationError` so typos
in definitions fail at deploy time, not silently at run time.

Accepted document shape::

    name: image-app                # optional package name
    functions:                     # optional package-level functions
      - name: resize
        image: img/resize
    classes:
      - name: Image
        qos: { throughput: 100 }
        constraint: { persistent: true }
        keySpecs:
          - name: image
            type: FILE
        functions:
          - name: resize           # inline image, or a reference to a
            image: img/resize      # package-level function by name
      - name: LabelledImage
        parent: Image
        functions:
          - name: detectObject
            image: img/detect-object

Both ``camelCase`` and ``snake_case`` key spellings are accepted.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.errors import PackageError, ValidationError
from repro.model.cls import AccessModifier, ClassDefinition, FunctionBinding
from repro.model.dataflow import DataflowSpec, DataflowStep
from repro.model.function import FunctionDefinition, FunctionType, ProvisionSpec
from repro.model.nfr import Constraint, NonFunctionalRequirements, QosRequirement
from repro.model.resolver import ClassResolver, ResolvedClass
from repro.model.types import DataType, KeySpec, StateSpec

__all__ = ["Package", "parse_package", "load_package", "loads_package"]


@dataclass(frozen=True)
class Package:
    """A deployable bundle of classes and functions."""

    name: str = "default"
    classes: tuple[ClassDefinition, ...] = field(default_factory=tuple)
    functions: tuple[FunctionDefinition, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        names = [cls.name for cls in self.classes]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise ValidationError(f"duplicate classes in package: {sorted(duplicates)}")
        fnames = [fn.name for fn in self.functions]
        fdup = {n for n in fnames if fnames.count(n) > 1}
        if fdup:
            raise ValidationError(f"duplicate functions in package: {sorted(fdup)}")

    def cls(self, name: str) -> ClassDefinition:
        for candidate in self.classes:
            if candidate.name == name:
                return candidate
        raise ValidationError(f"package {self.name!r} has no class {name!r}")

    def resolver(self) -> ClassResolver:
        return ClassResolver({cls.name: cls for cls in self.classes})

    def resolved_classes(self) -> dict[str, ResolvedClass]:
        """Flatten every class (validates the whole hierarchy)."""
        return self.resolver().resolve_all()


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------


def _require_mapping(node: Any, what: str) -> Mapping[str, Any]:
    if not isinstance(node, Mapping):
        raise PackageError(f"{what} must be a mapping, got {type(node).__name__}")
    return node


def _check_keys(node: Mapping[str, Any], allowed: dict[str, str], what: str) -> dict[str, Any]:
    """Normalize key spellings and reject unknown keys.

    ``allowed`` maps every accepted spelling to its canonical name.
    """
    out: dict[str, Any] = {}
    for key, value in node.items():
        canonical = allowed.get(key)
        if canonical is None:
            raise PackageError(
                f"unknown key {key!r} in {what}; allowed: "
                f"{sorted(set(allowed.values()))}"
            )
        if canonical in out:
            raise PackageError(f"duplicate key {canonical!r} in {what}")
        out[canonical] = value
    return out


_QOS_KEYS = {
    "throughput": "throughput",
    "throughputRps": "throughput",
    "throughput_rps": "throughput",
    "availability": "availability",
    "latency": "latency",
    "latencyMs": "latency",
    "latency_ms": "latency",
    "priority": "priority",
}

_CONSTRAINT_KEYS = {
    "persistent": "persistent",
    "persistence": "persistence",
    "budget": "budget",
    "budgetUsdPerMonth": "budget",
    "budget_usd_per_month": "budget",
    "jurisdiction": "jurisdictions",
    "jurisdictions": "jurisdictions",
}


def parse_nfr(node: Mapping[str, Any], what: str) -> NonFunctionalRequirements:
    qos_node = _check_keys(_require_mapping(node.get("qos", {}), f"{what}.qos"), _QOS_KEYS, f"{what}.qos")
    constraint_node = _check_keys(
        _require_mapping(node.get("constraint", {}), f"{what}.constraint"),
        _CONSTRAINT_KEYS,
        f"{what}.constraint",
    )
    jurisdictions = constraint_node.get("jurisdictions", ())
    if isinstance(jurisdictions, str):
        jurisdictions = (jurisdictions,)
    try:
        qos = QosRequirement(
            throughput_rps=qos_node.get("throughput"),
            availability=qos_node.get("availability"),
            latency_ms=qos_node.get("latency"),
            priority=qos_node.get("priority"),
        )
        persistence = constraint_node.get("persistence")
        if persistence is not None:
            persistence = str(persistence)
        # An explicit persistence level implies the matching persistent
        # flag unless the document also sets it (contradictions are
        # rejected by the Constraint validator).
        persistent_default = (persistence != "none") if persistence is not None else True
        constraint = Constraint(
            persistent=bool(constraint_node.get("persistent", persistent_default)),
            persistence=persistence,
            budget_usd_per_month=constraint_node.get("budget"),
            jurisdictions=tuple(jurisdictions),
        )
    except ValidationError as exc:
        raise PackageError(f"invalid NFR in {what}: {exc}") from exc
    return NonFunctionalRequirements(qos=qos, constraint=constraint)


_KEYSPEC_KEYS = {"name": "name", "type": "type", "default": "default", "doc": "doc"}


def parse_key_spec(node: Any, what: str) -> KeySpec:
    mapping = _check_keys(_require_mapping(node, what), _KEYSPEC_KEYS, what)
    if "name" not in mapping:
        raise PackageError(f"{what} is missing 'name'")
    dtype = DataType.parse(mapping.get("type", "JSON"))
    return KeySpec(
        name=str(mapping["name"]),
        dtype=dtype,
        default=mapping.get("default"),
        doc=str(mapping.get("doc", "")),
    )


_PROVISION_KEYS = {
    "concurrency": "concurrency",
    "cpu": "cpu_millis",
    "cpuMillis": "cpu_millis",
    "cpu_millis": "cpu_millis",
    "memory": "memory_mb",
    "memoryMb": "memory_mb",
    "memory_mb": "memory_mb",
    "minScale": "min_scale",
    "min_scale": "min_scale",
    "maxScale": "max_scale",
    "max_scale": "max_scale",
}


def parse_provision(node: Any, what: str) -> ProvisionSpec:
    mapping = _check_keys(_require_mapping(node, what), _PROVISION_KEYS, what)
    defaults = ProvisionSpec()
    try:
        return ProvisionSpec(
            concurrency=int(mapping.get("concurrency", defaults.concurrency)),
            cpu_millis=int(mapping.get("cpu_millis", defaults.cpu_millis)),
            memory_mb=int(mapping.get("memory_mb", defaults.memory_mb)),
            min_scale=int(mapping.get("min_scale", defaults.min_scale)),
            max_scale=int(mapping.get("max_scale", defaults.max_scale)),
        )
    except ValidationError as exc:
        raise PackageError(f"invalid provision in {what}: {exc}") from exc


_STEP_KEYS = {
    "id": "id",
    "name": "id",
    "function": "function",
    "target": "target",
    "inputs": "inputs",
    "args": "args",
}


def parse_dataflow(node: Any, what: str) -> DataflowSpec:
    mapping = _check_keys(
        _require_mapping(node, what), {"steps": "steps", "output": "output"}, what
    )
    raw_steps = mapping.get("steps")
    if not isinstance(raw_steps, list):
        raise PackageError(f"{what}.steps must be a list")
    steps = []
    for i, raw in enumerate(raw_steps):
        step_node = _check_keys(
            _require_mapping(raw, f"{what}.steps[{i}]"), _STEP_KEYS, f"{what}.steps[{i}]"
        )
        if "id" not in step_node or "function" not in step_node:
            raise PackageError(f"{what}.steps[{i}] needs 'id' and 'function'")
        inputs = step_node.get("inputs", ())
        if isinstance(inputs, str):
            inputs = (inputs,)
        args = _require_mapping(step_node.get("args", {}), f"{what}.steps[{i}].args")
        steps.append(
            DataflowStep(
                id=str(step_node["id"]),
                function=str(step_node["function"]),
                target=str(step_node.get("target", "$self")),
                inputs=tuple(str(ref) for ref in inputs),
                args={str(k): str(v) for k, v in args.items()},
            )
        )
    return DataflowSpec(steps=tuple(steps), output=mapping.get("output"))


_FUNCTION_KEYS = {
    "name": "name",
    "type": "type",
    "image": "image",
    "dataflow": "dataflow",
    "provision": "provision",
    "description": "description",
    # Binding-level keys, accepted when a function appears inline in a
    # class; ignored by parse_function itself.
    "access": "access",
    "mutable": "mutable",
    "outputClass": "output_class",
    "output_class": "output_class",
    "qos": "qos",
    "constraint": "constraint",
}


def _parse_function_fields(mapping: dict[str, Any], what: str) -> FunctionDefinition | None:
    """Build a FunctionDefinition from normalized fields, or ``None`` if
    the node carries no definition (it is then a reference by name)."""
    has_def = "image" in mapping or "dataflow" in mapping or "type" in mapping
    if not has_def:
        return None
    raw_type = str(mapping.get("type", "TASK" if "image" in mapping else "MACRO")).upper()
    try:
        ftype = FunctionType(raw_type)
    except ValueError:
        raise PackageError(
            f"unknown function type {raw_type!r} in {what}; expected "
            f"{', '.join(t.value for t in FunctionType)}"
        ) from None
    dataflow = None
    if "dataflow" in mapping:
        dataflow = parse_dataflow(mapping["dataflow"], f"{what}.dataflow")
    provision = (
        parse_provision(mapping["provision"], f"{what}.provision")
        if "provision" in mapping
        else ProvisionSpec()
    )
    try:
        return FunctionDefinition(
            name=str(mapping["name"]),
            ftype=ftype,
            image=mapping.get("image"),
            dataflow=dataflow,
            provision=provision,
            description=str(mapping.get("description", "")),
        )
    except ValidationError as exc:
        raise PackageError(f"invalid function in {what}: {exc}") from exc


def parse_function(node: Any, what: str) -> FunctionDefinition:
    mapping = _check_keys(_require_mapping(node, what), _FUNCTION_KEYS, what)
    if "name" not in mapping:
        raise PackageError(f"{what} is missing 'name'")
    definition = _parse_function_fields(mapping, what)
    if definition is None:
        raise PackageError(f"{what} must define 'image', 'dataflow', or 'type'")
    return definition


def parse_binding(
    node: Any, what: str, package_functions: Mapping[str, FunctionDefinition]
) -> FunctionBinding:
    mapping = _check_keys(_require_mapping(node, what), _FUNCTION_KEYS, what)
    if "name" not in mapping:
        raise PackageError(f"{what} is missing 'name'")
    name = str(mapping["name"])
    definition = _parse_function_fields(mapping, what)
    if definition is None:
        definition = package_functions.get(name)
        if definition is None:
            raise PackageError(
                f"{what}: {name!r} neither defines a function inline nor "
                "references a package-level function"
            )
    access_raw = str(mapping.get("access", "PUBLIC")).upper()
    try:
        access = AccessModifier(access_raw)
    except ValueError:
        raise PackageError(
            f"unknown access modifier {access_raw!r} in {what}"
        ) from None
    nfr = None
    if "qos" in mapping or "constraint" in mapping:
        nfr = parse_nfr(
            {"qos": mapping.get("qos", {}), "constraint": mapping.get("constraint", {})},
            what,
        )
    try:
        return FunctionBinding(
            name=name,
            function=definition,
            access=access,
            mutable=bool(mapping.get("mutable", True)),
            output_class=mapping.get("output_class"),
            nfr=nfr,
        )
    except ValidationError as exc:
        raise PackageError(f"invalid binding in {what}: {exc}") from exc


_CLASS_KEYS = {
    "name": "name",
    "parent": "parent",
    "keySpecs": "key_specs",
    "key_specs": "key_specs",
    "stateSpec": "key_specs",
    "functions": "functions",
    "qos": "qos",
    "constraint": "constraint",
    "description": "description",
}


def parse_class(
    node: Any,
    what: str,
    package_name: str,
    package_functions: Mapping[str, FunctionDefinition],
) -> ClassDefinition:
    mapping = _check_keys(_require_mapping(node, what), _CLASS_KEYS, what)
    if "name" not in mapping:
        raise PackageError(f"{what} is missing 'name'")
    raw_keys = mapping.get("key_specs", [])
    if not isinstance(raw_keys, list):
        raise PackageError(f"{what}.keySpecs must be a list")
    key_specs = tuple(
        parse_key_spec(raw, f"{what}.keySpecs[{i}]") for i, raw in enumerate(raw_keys)
    )
    raw_functions = mapping.get("functions", [])
    if not isinstance(raw_functions, list):
        raise PackageError(f"{what}.functions must be a list")
    bindings = tuple(
        parse_binding(raw, f"{what}.functions[{i}]", package_functions)
        for i, raw in enumerate(raw_functions)
    )
    nfr = parse_nfr(
        {"qos": mapping.get("qos", {}), "constraint": mapping.get("constraint", {})},
        what,
    )
    try:
        return ClassDefinition(
            name=str(mapping["name"]),
            package=package_name,
            parent=mapping.get("parent"),
            state=StateSpec(key_specs),
            bindings=bindings,
            nfr=nfr,
            description=str(mapping.get("description", "")),
        )
    except ValidationError as exc:
        raise PackageError(f"invalid class in {what}: {exc}") from exc


_PACKAGE_KEYS = {
    "name": "name",
    "classes": "classes",
    "functions": "functions",
    "description": "description",
}


def parse_package(data: Any) -> Package:
    """Parse a package document (already decoded from YAML/JSON)."""
    mapping = _check_keys(_require_mapping(data, "package"), _PACKAGE_KEYS, "package")
    package_name = str(mapping.get("name", "default"))
    raw_functions = mapping.get("functions", [])
    if not isinstance(raw_functions, list):
        raise PackageError("package.functions must be a list")
    functions = tuple(
        parse_function(raw, f"package.functions[{i}]")
        for i, raw in enumerate(raw_functions)
    )
    function_index = {fn.name: fn for fn in functions}
    raw_classes = mapping.get("classes", [])
    if not isinstance(raw_classes, list):
        raise PackageError("package.classes must be a list")
    classes = tuple(
        parse_class(raw, f"package.classes[{i}]", package_name, function_index)
        for i, raw in enumerate(raw_classes)
    )
    package = Package(name=package_name, classes=classes, functions=functions)
    # Validate the inheritance hierarchy eagerly so broken packages are
    # rejected at parse time, matching deploy-time behaviour of Oparaca.
    package.resolved_classes()
    return package


def loads_package(text: str, fmt: str = "yaml") -> Package:
    """Parse a package from YAML or JSON text."""
    if fmt == "json":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise PackageError(f"invalid JSON: {exc}") from exc
    elif fmt == "yaml":
        try:
            import yaml
        except ImportError:  # pragma: no cover - yaml always present in CI
            raise PackageError("PyYAML is not installed; use JSON") from None
        try:
            data = yaml.safe_load(text)
        except yaml.YAMLError as exc:
            raise PackageError(f"invalid YAML: {exc}") from exc
    else:
        raise PackageError(f"unknown package format {fmt!r}; use 'yaml' or 'json'")
    return parse_package(data)


def load_package(path: str | Path) -> Package:
    """Load a package from a ``.yml``/``.yaml``/``.json`` file."""
    path = Path(path)
    fmt = "json" if path.suffix.lower() == ".json" else "yaml"
    try:
        text = path.read_text()
    except OSError as exc:
        raise PackageError(f"cannot read package file {path}: {exc}") from exc
    return loads_package(text, fmt=fmt)

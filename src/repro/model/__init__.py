"""The OaaS data model: classes, state, functions, dataflow, NFRs.

This package is the control-plane vocabulary of the platform — pure,
immutable definitions with strict validation, independent of any
runtime concern.
"""

from repro.model.cls import AccessModifier, ClassDefinition, FunctionBinding
from repro.model.dataflow import (
    MACRO_INPUT,
    SELF_TARGET,
    DataflowSpec,
    DataflowStep,
    resolve_path,
    resolve_template,
)
from repro.model.function import FunctionDefinition, FunctionType, ProvisionSpec
from repro.model.nfr import Constraint, NonFunctionalRequirements, QosRequirement
from repro.model.pkg import Package, load_package, loads_package, parse_package
from repro.model.resolver import ClassResolver, ResolvedClass
from repro.model.types import DataType, KeySpec, StateSpec

__all__ = [
    "AccessModifier",
    "ClassDefinition",
    "FunctionBinding",
    "DataflowSpec",
    "DataflowStep",
    "MACRO_INPUT",
    "SELF_TARGET",
    "resolve_path",
    "resolve_template",
    "FunctionDefinition",
    "FunctionType",
    "ProvisionSpec",
    "Constraint",
    "NonFunctionalRequirements",
    "QosRequirement",
    "Package",
    "load_package",
    "loads_package",
    "parse_package",
    "ClassResolver",
    "ResolvedClass",
    "DataType",
    "KeySpec",
    "StateSpec",
]

"""Function definitions.

A function is the unit of logic in OaaS — realized by a serverless
function behind the scenes (§II).  Three kinds exist:

* ``TASK`` — a container image (here: a registered Python callable)
  executed by a FaaS engine under the pure-function contract (§III-C).
* ``MACRO`` — a dataflow composition of other functions (§II-B); the
  platform executes the steps, not a container.
* ``BUILTIN`` — platform-provided functionality (e.g. the implicit
  ``new`` constructor and state getters) that short-circuits the FaaS
  engine.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import ValidationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.model.dataflow import DataflowSpec

__all__ = ["FunctionType", "ProvisionSpec", "FunctionDefinition"]

_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_.-]*$")


class FunctionType(str, enum.Enum):
    TASK = "TASK"
    MACRO = "MACRO"
    BUILTIN = "BUILTIN"


@dataclass(frozen=True)
class ProvisionSpec:
    """Resource/deployment hints for a TASK function's runtime.

    These mirror Knative/Kubernetes knobs: per-replica concurrency,
    resource requests, and scale bounds.  ``min_scale=0`` enables
    scale-to-zero (with cold starts); raising it pre-warms replicas.
    """

    concurrency: int = 8
    cpu_millis: int = 500
    memory_mb: int = 256
    min_scale: int = 0
    max_scale: int = 64

    def __post_init__(self) -> None:
        if self.concurrency < 1:
            raise ValidationError(f"concurrency must be >= 1, got {self.concurrency}")
        if self.cpu_millis < 1:
            raise ValidationError(f"cpu_millis must be >= 1, got {self.cpu_millis}")
        if self.memory_mb < 1:
            raise ValidationError(f"memory_mb must be >= 1, got {self.memory_mb}")
        if self.min_scale < 0:
            raise ValidationError(f"min_scale must be >= 0, got {self.min_scale}")
        if self.max_scale < max(1, self.min_scale):
            raise ValidationError(
                f"max_scale must be >= max(1, min_scale), got {self.max_scale}"
            )


@dataclass(frozen=True)
class FunctionDefinition:
    """A deployable function.

    Attributes:
        name: function name, unique within its package.
        ftype: TASK, MACRO, or BUILTIN.
        image: container image reference for TASK functions; resolved
            against the :class:`~repro.faas.registry.FunctionRegistry`.
        dataflow: the composition for MACRO functions.
        provision: deployment hints for TASK functions.
        description: human-readable docstring.
    """

    name: str
    ftype: FunctionType = FunctionType.TASK
    image: str | None = None
    dataflow: "DataflowSpec | None" = None
    provision: ProvisionSpec = field(default_factory=ProvisionSpec)
    description: str = ""

    def __post_init__(self) -> None:
        if not _NAME_RE.match(self.name):
            raise ValidationError(f"invalid function name {self.name!r}")
        if self.ftype is FunctionType.TASK and not self.image:
            raise ValidationError(f"TASK function {self.name!r} requires an image")
        if self.ftype is FunctionType.MACRO and self.dataflow is None:
            raise ValidationError(f"MACRO function {self.name!r} requires a dataflow")
        if self.ftype is not FunctionType.MACRO and self.dataflow is not None:
            raise ValidationError(
                f"function {self.name!r} has a dataflow but is {self.ftype.value}"
            )

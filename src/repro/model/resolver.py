"""Inheritance and polymorphism resolution (paper §II-A, §III-A).

Oparaca classes support single inheritance: a child class inherits its
parent's state keys and methods, may add new ones, and may *override*
inherited methods (polymorphism — Listing 1's ``LabelledImage`` extends
``Image`` and adds ``detectObject``).  The resolver flattens each class
into a :class:`ResolvedClass` carrying the merged state schema, the full
method table, and the ancestry chain used for subtype checks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ClassResolutionError
from repro.model.cls import ClassDefinition, FunctionBinding
from repro.model.dataflow import DataflowSpec
from repro.model.function import FunctionType
from repro.model.nfr import NonFunctionalRequirements
from repro.model.types import StateSpec

__all__ = ["ResolvedClass", "ClassResolver"]


@dataclass(frozen=True)
class ResolvedClass:
    """A class flattened through its inheritance chain.

    Attributes:
        name: class name.
        definition: the original (unflattened) definition.
        ancestry: ``(name, parent, grandparent, ...)`` — self first.
        state: merged state schema, parent keys first.
        methods: method name → effective binding (overrides applied).
        nfr: effective NFRs (child overlaid on ancestors).
    """

    name: str
    definition: ClassDefinition
    ancestry: tuple[str, ...]
    state: StateSpec
    methods: dict[str, FunctionBinding]
    nfr: NonFunctionalRequirements

    def binding(self, method: str) -> FunctionBinding | None:
        return self.methods.get(method)

    def is_subclass_of(self, other: str) -> bool:
        """True if this class is ``other`` or inherits from it."""
        return other in self.ancestry

    def effective_nfr(self, method: str) -> NonFunctionalRequirements:
        """The NFRs governing one method (binding override over class)."""
        binding = self.methods.get(method)
        if binding is not None and binding.nfr is not None:
            return binding.nfr.merged_over(self.nfr)
        return self.nfr

    @property
    def method_names(self) -> tuple[str, ...]:
        return tuple(sorted(self.methods))


class ClassResolver:
    """Resolves a set of class definitions into flattened classes."""

    def __init__(self, definitions: dict[str, ClassDefinition]) -> None:
        self._definitions = dict(definitions)
        self._cache: dict[str, ResolvedClass] = {}

    def resolve(self, name: str) -> ResolvedClass:
        """Flatten ``name`` through its ancestry.

        Raises:
            ClassResolutionError: unknown class/parent, inheritance
                cycle, or a macro referencing a method the class lacks.
        """
        cached = self._cache.get(name)
        if cached is not None:
            return cached
        chain = self._ancestry(name)
        # Merge root-first so children override.
        state = StateSpec()
        methods: dict[str, FunctionBinding] = {}
        nfr = NonFunctionalRequirements.none()
        for cls_name in reversed(chain):
            definition = self._definitions[cls_name]
            state = state.merged_with(definition.state)
            for binding in definition.bindings:
                self._check_override(cls_name, binding, methods.get(binding.name))
                methods[binding.name] = binding
            if not definition.nfr.is_default:
                nfr = definition.nfr.merged_over(nfr)
        resolved = ResolvedClass(
            name=name,
            definition=self._definitions[name],
            ancestry=tuple(chain),
            state=state,
            methods=methods,
            nfr=nfr,
        )
        self._validate_macros(resolved)
        self._cache[name] = resolved
        return resolved

    def resolve_all(self) -> dict[str, ResolvedClass]:
        return {name: self.resolve(name) for name in sorted(self._definitions)}

    def is_subclass(self, child: str, parent: str) -> bool:
        """Subtype check across the registered hierarchy."""
        if child not in self._definitions:
            raise ClassResolutionError(f"unknown class {child!r}")
        return parent in self._ancestry(child)

    # -- internals -------------------------------------------------------

    def _ancestry(self, name: str) -> list[str]:
        chain: list[str] = []
        seen: set[str] = set()
        current: str | None = name
        while current is not None:
            if current not in self._definitions:
                where = f" (parent of {chain[-1]!r})" if chain else ""
                raise ClassResolutionError(f"unknown class {current!r}{where}")
            if current in seen:
                raise ClassResolutionError(
                    f"inheritance cycle involving {current!r}: {chain + [current]}"
                )
            seen.add(current)
            chain.append(current)
            current = self._definitions[current].parent
        return chain

    @staticmethod
    def _check_override(
        cls_name: str, binding: FunctionBinding, inherited: FunctionBinding | None
    ) -> None:
        if inherited is None:
            return
        if binding.mutable != inherited.mutable:
            raise ClassResolutionError(
                f"class {cls_name!r} overrides {binding.name!r} changing "
                f"mutability ({inherited.mutable} -> {binding.mutable}); "
                "callers relying on the parent contract would break"
            )

    def _validate_macros(self, resolved: ResolvedClass) -> None:
        for method, binding in resolved.methods.items():
            if binding.function.ftype is not FunctionType.MACRO:
                continue
            dataflow: DataflowSpec = binding.function.dataflow
            for step in dataflow.steps:
                callee = resolved.methods.get(step.function)
                if callee is None and step.target == "$self":
                    raise ClassResolutionError(
                        f"macro {method!r} on class {resolved.name!r}: step "
                        f"{step.id!r} calls unknown method {step.function!r}"
                    )

"""Dataflow abstraction (paper §II-B).

A MACRO function is defined as a directed acyclic graph of *steps*.
Execution order is derived from the flow of data — a step runs as soon
as every value it references is available — rather than from an
explicit invocation order.  The platform extracts the dependency
structure, runs independent steps in parallel, and navigates outputs
between steps, so the composition can change without touching function
code.

Reference syntax
----------------

* step ``target``: ``$self`` (the object the macro was invoked on) or
  ``@<step-id>`` (the object *produced* by a previous step, for steps
  whose function has an output class).
* step ``inputs``: ``$`` (the macro's own payload) or a step id (the
  payload is that step's output).
* step ``args`` values: template strings where ``${input.<path>}``
  references the macro payload and ``${<step-id>.<path>}`` references a
  prior step's output.  An arg that is *exactly* one reference resolves
  to the referenced value with its type preserved.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.errors import DataflowError

__all__ = [
    "MACRO_INPUT",
    "SELF_TARGET",
    "DataflowStep",
    "DataflowSpec",
    "resolve_path",
    "resolve_template",
]

MACRO_INPUT = "$"
SELF_TARGET = "$self"

_REF_RE = re.compile(r"\$\{([A-Za-z_][A-Za-z0-9_.\-\[\]]*)\}")
_ID_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_-]*$")


def resolve_path(path: str, context: Mapping[str, Any]) -> Any:
    """Resolve ``root.seg1.seg2`` against ``context[root]``.

    Dict lookups for mapping segments, integer indexing for sequences.
    Raises :class:`DataflowError` on a missing segment.
    """
    parts = path.split(".")
    root = parts[0]
    if root not in context:
        raise DataflowError(f"unknown reference root {root!r} in ${{{path}}}")
    value: Any = context[root]
    for segment in parts[1:]:
        if isinstance(value, Mapping):
            if segment not in value:
                raise DataflowError(f"missing field {segment!r} resolving ${{{path}}}")
            value = value[segment]
        elif isinstance(value, (list, tuple)):
            try:
                value = value[int(segment)]
            except (ValueError, IndexError):
                raise DataflowError(
                    f"bad index {segment!r} resolving ${{{path}}}"
                ) from None
        else:
            raise DataflowError(
                f"cannot descend into {type(value).__name__} at {segment!r} "
                f"resolving ${{{path}}}"
            )
    return value


def resolve_template(template: str, context: Mapping[str, Any]) -> Any:
    """Interpolate ``${...}`` references in ``template``.

    A template consisting of exactly one reference returns the raw
    referenced value; otherwise references are string-interpolated.
    """
    whole = _REF_RE.fullmatch(template)
    if whole:
        return resolve_path(whole.group(1), context)
    return _REF_RE.sub(lambda m: str(resolve_path(m.group(1), context)), template)


def template_references(template: str) -> set[str]:
    """Root names referenced by a template string."""
    return {match.group(1).split(".")[0] for match in _REF_RE.finditer(template)}


@dataclass(frozen=True)
class DataflowStep:
    """One node of the dataflow graph."""

    id: str
    function: str
    target: str = SELF_TARGET
    inputs: tuple[str, ...] = ()
    args: Mapping[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not _ID_RE.match(self.id):
            raise DataflowError(f"invalid step id {self.id!r}")
        if not self.function:
            raise DataflowError(f"step {self.id!r} has no function")
        object.__setattr__(self, "inputs", tuple(self.inputs))
        object.__setattr__(self, "args", dict(self.args))

    def dependencies(self) -> set[str]:
        """Ids of steps this step's data references depend on."""
        deps: set[str] = set()
        for ref in self.inputs:
            if ref != MACRO_INPUT:
                deps.add(ref)
        if self.target.startswith("@"):
            deps.add(self.target[1:])
        for value in self.args.values():
            for root in template_references(value):
                if root != "input":
                    deps.add(root)
        return deps


@dataclass(frozen=True)
class DataflowSpec:
    """A validated dataflow graph."""

    steps: tuple[DataflowStep, ...]
    output: str | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "steps", tuple(self.steps))
        if not self.steps:
            raise DataflowError("dataflow has no steps")
        ids = [step.id for step in self.steps]
        duplicates = {sid for sid in ids if ids.count(sid) > 1}
        if duplicates:
            raise DataflowError(f"duplicate step ids: {sorted(duplicates)}")
        known = set(ids)
        for step in self.steps:
            for dep in step.dependencies():
                if dep not in known:
                    raise DataflowError(
                        f"step {step.id!r} references unknown step {dep!r}"
                    )
            if step.target != SELF_TARGET and not step.target.startswith("@"):
                raise DataflowError(
                    f"step {step.id!r} target must be {SELF_TARGET!r} or "
                    f"'@<step-id>', got {step.target!r}"
                )
        if self.output is not None and self.output not in known:
            raise DataflowError(f"dataflow output {self.output!r} is not a step id")
        # Validate acyclicity eagerly so bad definitions fail at parse time.
        self.waves()

    def step(self, step_id: str) -> DataflowStep:
        for candidate in self.steps:
            if candidate.id == step_id:
                return candidate
        raise DataflowError(f"no step {step_id!r}")

    def waves(self) -> list[list[DataflowStep]]:
        """Topological *waves*: steps within a wave are data-independent
        and may execute in parallel; waves execute in order.

        Raises :class:`DataflowError` if the graph has a cycle.
        """
        remaining = {step.id: set(step.dependencies()) for step in self.steps}
        order: list[list[DataflowStep]] = []
        done: set[str] = set()
        while remaining:
            ready = sorted(sid for sid, deps in remaining.items() if deps <= done)
            if not ready:
                raise DataflowError(
                    f"dataflow cycle among steps {sorted(remaining)}"
                )
            order.append([self.step(sid) for sid in ready])
            done.update(ready)
            for sid in ready:
                del remaining[sid]
        return order

    def referenced_functions(self) -> set[str]:
        """Function names the dataflow invokes (for binding validation)."""
        return {step.function for step in self.steps}

"""Class definitions (paper §III-A, Listing 1).

An OaaS *class* declares the structure of its objects: the state schema
(``keySpecs``), the functions bound to it (its methods), optional
non-functional requirements, and an optional parent class for
inheritance.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field

from repro.errors import ValidationError
from repro.model.function import FunctionDefinition, FunctionType
from repro.model.nfr import NonFunctionalRequirements
from repro.model.types import StateSpec

__all__ = ["AccessModifier", "FunctionBinding", "ClassDefinition"]

_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_.-]*$")


class AccessModifier(str, enum.Enum):
    """Who may invoke a bound function.

    PUBLIC — any client through the gateway.
    INTERNAL — only other functions (dataflow steps) of the same package.
    PRIVATE — only functions of the same class.
    """

    PUBLIC = "PUBLIC"
    INTERNAL = "INTERNAL"
    PRIVATE = "PRIVATE"


@dataclass(frozen=True)
class FunctionBinding:
    """Binds a function definition to a class as a named method.

    Attributes:
        name: the method name on the class (may differ from the
            underlying function's name).
        function: the function definition being bound.
        access: visibility of the method.
        mutable: whether the method may modify object state; immutable
            methods skip the state-commit phase entirely.
        output_class: class name of the object the method produces, or
            ``None`` if it returns only a payload.
        nfr: per-method NFR override (merged over the class NFR).
    """

    name: str
    function: FunctionDefinition
    access: AccessModifier = AccessModifier.PUBLIC
    mutable: bool = True
    output_class: str | None = None
    nfr: NonFunctionalRequirements | None = None

    def __post_init__(self) -> None:
        if not _NAME_RE.match(self.name):
            raise ValidationError(f"invalid method name {self.name!r}")


@dataclass(frozen=True)
class ClassDefinition:
    """A single OaaS class as written by the developer (pre-resolution).

    Inheritance (``parent``) is resolved by
    :class:`~repro.model.resolver.ClassResolver`, which merges state
    schemas and method tables down the chain.
    """

    name: str
    package: str = ""
    parent: str | None = None
    state: StateSpec = field(default_factory=StateSpec)
    bindings: tuple[FunctionBinding, ...] = field(default_factory=tuple)
    nfr: NonFunctionalRequirements = field(default_factory=NonFunctionalRequirements.none)
    description: str = ""

    def __post_init__(self) -> None:
        if not _NAME_RE.match(self.name):
            raise ValidationError(f"invalid class name {self.name!r}")
        if self.parent is not None and self.parent == self.name:
            raise ValidationError(f"class {self.name!r} cannot be its own parent")
        object.__setattr__(self, "bindings", tuple(self.bindings))
        names = [binding.name for binding in self.bindings]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise ValidationError(
                f"class {self.name!r} binds duplicate methods: {sorted(duplicates)}"
            )
        for binding in self.bindings:
            if binding.function.ftype is FunctionType.MACRO:
                # Macro steps must call methods that exist on this class;
                # full checking happens post-resolution, but self-evident
                # mistakes (step calling the macro itself) fail fast here.
                if binding.name in binding.function.dataflow.referenced_functions():
                    raise ValidationError(
                        f"macro {binding.name!r} on class {self.name!r} "
                        "invokes itself"
                    )

    def binding(self, method: str) -> FunctionBinding | None:
        for candidate in self.bindings:
            if candidate.name == method:
                return candidate
        return None

    @property
    def method_names(self) -> tuple[str, ...]:
        return tuple(binding.name for binding in self.bindings)

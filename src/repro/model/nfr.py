"""Non-functional requirement (NFR) interface (paper §II-C).

Developers attach *QoS requirements* (measurable service-level targets:
throughput, availability, latency) and *deployment constraints*
(persistence, budget, jurisdiction) to a class — or override them per
function.  The platform consumes these during deployment: the class
runtime manager matches them against runtime templates (§III-B) and the
optimizer enforces them at run time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, fields

from repro.errors import ValidationError

__all__ = [
    "QosRequirement",
    "Constraint",
    "NonFunctionalRequirements",
    "MAX_PRIORITY",
    "PERSISTENCE_LEVELS",
]

#: Upper bound of the declared scheduling priority scale (1 = lowest).
MAX_PRIORITY = 10

#: Valid values of the ``persistence`` constraint level.  ``strong``
#: demands synchronous durability on every commit, ``standard`` accepts
#: the write-behind/periodic-snapshot window, ``none`` declares the
#: class ephemeral (equivalent to ``persistent: false``).
PERSISTENCE_LEVELS = ("strong", "standard", "none")


def _checked_number(name: str, value, allow_bool: bool = False) -> float:
    """A finite ``float`` from a declared QoS value, or a clear error.

    YAML happily hands us strings, booleans, NaN, and infinities; every
    one of them would otherwise slip past a plain ``<= 0`` comparison
    (NaN compares false with everything) and surface later as a broken
    enforcement decision."""
    if isinstance(value, bool) and not allow_bool:
        raise ValidationError(f"{name} must be a number, got a boolean")
    if not isinstance(value, (int, float)):
        raise ValidationError(
            f"{name} must be a number, got {type(value).__name__} {value!r}"
        )
    result = float(value)
    if not math.isfinite(result):
        raise ValidationError(f"{name} must be finite, got {value!r}")
    return result


@dataclass(frozen=True)
class QosRequirement:
    """Measurable quality-of-service targets.

    All fields are optional; ``None`` means "no requirement".

    Attributes:
        throughput_rps: sustained invocations/second the class must
            support (Listing 1: ``throughput: 100``).
        availability: required availability as a fraction in (0, 1],
            e.g. ``0.999``.
        latency_ms: p99 end-to-end invocation latency bound.
        priority: scheduling priority relative to other classes
            (1 = lowest, :data:`MAX_PRIORITY` = highest).  Consumed by
            the QoS enforcement plane: it sets the class's weighted-fair
            share and its shed order under overload.
    """

    throughput_rps: float | None = None
    availability: float | None = None
    latency_ms: float | None = None
    priority: int | None = None

    def __post_init__(self) -> None:
        if self.throughput_rps is not None:
            if _checked_number("throughput", self.throughput_rps) <= 0:
                raise ValidationError(
                    f"throughput must be > 0, got {self.throughput_rps}"
                )
        if self.availability is not None:
            if not 0 < _checked_number("availability", self.availability) <= 1:
                raise ValidationError(
                    f"availability must be in (0, 1], got {self.availability}"
                )
        if self.latency_ms is not None:
            if _checked_number("latency bound", self.latency_ms) <= 0:
                raise ValidationError(
                    f"latency bound must be > 0, got {self.latency_ms}"
                )
        if self.priority is not None:
            if isinstance(self.priority, bool) or not isinstance(self.priority, int):
                raise ValidationError(
                    f"priority must be an integer, got {self.priority!r}"
                )
            if not 1 <= self.priority <= MAX_PRIORITY:
                raise ValidationError(
                    f"priority must be in [1, {MAX_PRIORITY}], got {self.priority}"
                )

    @property
    def is_empty(self) -> bool:
        return all(getattr(self, f.name) is None for f in fields(self))


@dataclass(frozen=True)
class Constraint:
    """Deployment constraints.

    Attributes:
        persistent: whether object state must survive the in-memory tier
            (Listing 1: ``persistent: true``).  Non-persistent classes
            skip database write-behind entirely — the
            ``oprc-bypass-nonpersist`` configuration of Fig. 3.
        persistence: the declared durability *level* refining the
            boolean — one of :data:`PERSISTENCE_LEVELS`.  ``strong``
            asks for synchronous snapshot-on-commit epochs (RPO = 0),
            ``standard`` accepts the write-behind / periodic-cut window,
            ``none`` is ephemeral.  ``None`` (unset) derives the level
            from ``persistent``: ``standard`` when true, ``none`` when
            false.
        budget_usd_per_month: upper bound on monthly deployment cost.
        jurisdictions: datacenter regions where state may reside; empty
            means unrestricted.
    """

    persistent: bool = True
    persistence: str | None = None
    budget_usd_per_month: float | None = None
    jurisdictions: tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.budget_usd_per_month is not None and self.budget_usd_per_month <= 0:
            raise ValidationError(
                f"budget must be > 0, got {self.budget_usd_per_month}"
            )
        if self.persistence is not None:
            if self.persistence not in PERSISTENCE_LEVELS:
                raise ValidationError(
                    f"persistence must be one of {list(PERSISTENCE_LEVELS)}, "
                    f"got {self.persistence!r}"
                )
            # The level and the boolean must not contradict: an
            # ephemeral level on a persistent class (or vice versa)
            # would make template matching and durability policy
            # disagree about the same declaration.
            if (self.persistence == "none") == self.persistent:
                raise ValidationError(
                    f"persistence={self.persistence!r} contradicts "
                    f"persistent={self.persistent}"
                )

    @property
    def persistence_level(self) -> str:
        """The effective durability level (always one of
        :data:`PERSISTENCE_LEVELS`), deriving unset levels from the
        ``persistent`` boolean."""
        if self.persistence is not None:
            return self.persistence
        return "standard" if self.persistent else "none"

    @property
    def is_default(self) -> bool:
        return (
            self.persistent
            and self.persistence is None
            and self.budget_usd_per_month is None
            and not self.jurisdictions
        )


@dataclass(frozen=True)
class NonFunctionalRequirements:
    """The complete NFR block of a class or function."""

    qos: QosRequirement = field(default_factory=QosRequirement)
    constraint: Constraint = field(default_factory=Constraint)

    @classmethod
    def none(cls) -> "NonFunctionalRequirements":
        """The empty requirement block (all defaults)."""
        return cls()

    @property
    def is_default(self) -> bool:
        return self.qos.is_empty and self.constraint.is_default

    def merged_over(self, base: "NonFunctionalRequirements") -> "NonFunctionalRequirements":
        """Overlay these requirements on inherited ``base`` requirements.

        Field-wise: a child value wins where it is set; unset QoS fields
        fall back to the parent.  Constraints are taken wholesale from
        whichever block is non-default, preferring the child.
        """
        qos = QosRequirement(
            throughput_rps=(
                self.qos.throughput_rps
                if self.qos.throughput_rps is not None
                else base.qos.throughput_rps
            ),
            availability=(
                self.qos.availability
                if self.qos.availability is not None
                else base.qos.availability
            ),
            latency_ms=(
                self.qos.latency_ms
                if self.qos.latency_ms is not None
                else base.qos.latency_ms
            ),
            priority=(
                self.qos.priority
                if self.qos.priority is not None
                else base.qos.priority
            ),
        )
        constraint = self.constraint if not self.constraint.is_default else base.constraint
        return NonFunctionalRequirements(qos=qos, constraint=constraint)

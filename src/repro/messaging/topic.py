"""Partitioned topic log (Kafka-style) for asynchronous invocation.

Oparaca accepts fire-and-forget invocations by publishing tasks onto a
topic; class-runtime workers consume partitions and execute them.  The
log is partitioned by object key so updates to one object are consumed
in order (single writer per partition), which keeps asynchronous state
commits serializable without locking.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Generator

from repro.errors import MessagingError
from repro.sim.kernel import Environment, Event, Process
from repro.sim.resources import Store

__all__ = ["Message", "Topic", "ConsumerGroup"]


@dataclass(frozen=True)
class Message:
    """One record on a partition."""

    topic: str
    partition: int
    offset: int
    key: str
    value: Any
    timestamp: float


class _Partition:
    def __init__(self, env: Environment, topic: str, index: int) -> None:
        self.env = env
        self.topic = topic
        self.index = index
        self.log: list[Message] = []
        self.queue = Store(env)

    def append(self, key: str, value: Any) -> Message:
        message = Message(
            topic=self.topic,
            partition=self.index,
            offset=len(self.log),
            key=key,
            value=value,
            timestamp=self.env.now,
        )
        self.log.append(message)
        self.queue.put(message)
        return message


class Topic:
    """A named, partitioned log."""

    def __init__(self, env: Environment, name: str, partitions: int = 4) -> None:
        if partitions < 1:
            raise MessagingError(f"partitions must be >= 1, got {partitions}")
        self.env = env
        self.name = name
        self._partitions = [_Partition(env, name, i) for i in range(partitions)]
        self.published = 0

    @property
    def partitions(self) -> int:
        return len(self._partitions)

    def partition_for(self, key: str) -> int:
        digest = hashlib.md5(key.encode()).digest()
        return int.from_bytes(digest[:4], "big") % len(self._partitions)

    def publish(self, key: str, value: Any) -> Message:
        """Append a record, routed by key hash."""
        if not key:
            raise MessagingError("message key must be non-empty")
        self.published += 1
        return self._partitions[self.partition_for(key)].append(key, value)

    def get(self, partition: int) -> Event:
        """Blocking fetch of the next unconsumed record of a partition."""
        if not 0 <= partition < len(self._partitions):
            raise MessagingError(
                f"topic {self.name!r} has {len(self._partitions)} partitions, "
                f"asked for {partition}"
            )
        return self._partitions[partition].queue.get()

    def depth(self, partition: int | None = None) -> int:
        """Unconsumed records (one partition or the whole topic)."""
        if partition is not None:
            return len(self._partitions[partition].queue)
        return sum(len(p.queue) for p in self._partitions)

    def history(self, partition: int) -> list[Message]:
        return list(self._partitions[partition].log)


class ConsumerGroup:
    """Spreads a topic's partitions over worker processes.

    ``handler(message)`` must be a generator (it may perform timed
    work).  Each partition gets exactly one worker, preserving
    per-object ordering.
    """

    def __init__(self, env: Environment, topic: Topic, handler, workers: int | None = None) -> None:
        self.env = env
        self.topic = topic
        self.handler = handler
        self.consumed = 0
        #: Records fetched from a partition after :meth:`stop` but never
        #: handled.  They are counted, not silently dropped, so the stop
        #: report's ``pending`` number stays truthful.
        self.stranded = 0
        self._running = True
        count = topic.partitions if workers is None else min(workers, topic.partitions)
        if count < 1:
            raise MessagingError("consumer group needs at least one worker")
        # Assign partitions round-robin over workers.
        assignments: list[list[int]] = [[] for _ in range(count)]
        for partition in range(topic.partitions):
            assignments[partition % count].append(partition)
        self.processes: list[Process] = [
            env.process(self._worker(parts)) for parts in assignments if parts
        ]

    def stop(self) -> dict[str, int]:
        """Stop draining; returns ``{"pending": n}`` — records accepted
        by the topic but not fully handled at stop time (still queued,
        fetched-in-flight, or mid-handler), mirroring
        :meth:`~repro.storage.write_behind.WriteBehindQueue.stop`'s loss
        report.  In-flight records that a worker has already pulled off
        a partition are part of this count; without it they would vanish
        from ``topic.depth()`` without ever reaching the handler."""
        self._running = False
        return {"pending": self.topic.published - self.consumed}

    def _worker(self, partitions: list[int]) -> Generator:
        # A worker owning several partitions drains them round-robin,
        # blocking only when all its partitions are empty.
        while self._running:
            message = None
            for partition in partitions:
                if self.topic.depth(partition):
                    message = yield self.topic.get(partition)
                    break
            if message is None:
                if len(partitions) == 1:
                    message = yield self.topic.get(partitions[0])
                else:
                    # Block on the first partition; adequate for tests and
                    # balanced loads, and avoids busy-waiting.
                    message = yield self.topic.get(partitions[0])
            if not self._running:
                # The fetch already removed the record from its
                # partition queue; account for it rather than letting it
                # disappear between depth() and consumed.
                if message is not None:
                    self.stranded += 1
                return
            yield from self.handler(message)
            self.consumed += 1

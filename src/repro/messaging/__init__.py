"""Messaging substrate: partitioned topic log and consumer groups."""

from repro.messaging.topic import ConsumerGroup, Message, Topic

__all__ = ["ConsumerGroup", "Message", "Topic"]
